"""Tests for the recursive aggregate builtin (Example 4)."""

import pytest

from repro.datalog import FactStore, Atom, Const
from repro.errors import MediatorError
from repro.domainmap import DomainMap
from repro.core import aggregate_over_dm, direct_values_at


def store_with(facts):
    store = FactStore()
    for pred, *args in facts:
        store.add(Atom(pred, tuple(Const(a) for a in args)))
    return store


@pytest.fixture
def region_dm():
    dm = DomainMap("regions")
    dm.add_axioms(
        """
        Brain < exists has.Cerebellum
        Brain < exists has.Hippocampus
        Cerebellum < exists has.Purkinje_Cell
        Purkinje_Cell < exists has.Purkinje_Dendrite
        Purkinje_Cell < exists has.Purkinje_Soma
        Hippocampus < exists has.Pyramidal_Cell
        """
    )
    return dm


@pytest.fixture
def amounts(region_dm):
    return store_with(
        [
            ("anchor", "o1", "Purkinje_Dendrite"),
            ("method_val", "o1", "amount", 3.0),
            ("method_val", "o1", "protein", "RyR"),
            ("anchor", "o2", "Purkinje_Soma"),
            ("method_val", "o2", "amount", 2.0),
            ("method_val", "o2", "protein", "RyR"),
            ("anchor", "o3", "Purkinje_Dendrite"),
            ("method_val", "o3", "amount", 10.0),
            ("method_val", "o3", "protein", "CB"),
            ("anchor", "o4", "Pyramidal_Cell"),
            ("method_val", "o4", "amount", 7.0),
            ("method_val", "o4", "protein", "RyR"),
        ]
    )


class TestDirectValues:
    def test_reads_anchor_not_instance(self, amounts):
        # instance facts alone do not contribute
        amounts.add(Atom("instance", (Const("oX"), Const("Purkinje_Soma"))))
        amounts.add(Atom("method_val", (Const("oX"), Const("amount"), Const(99.0))))
        values = direct_values_at(amounts, "Purkinje_Soma", "amount")
        assert values == [2.0]

    def test_filters(self, amounts):
        assert direct_values_at(
            amounts, "Purkinje_Dendrite", "amount", {"protein": "RyR"}
        ) == [3.0]
        assert direct_values_at(
            amounts, "Purkinje_Dendrite", "amount", {"protein": "CB"}
        ) == [10.0]

    def test_empty_concept(self, amounts):
        assert direct_values_at(amounts, "Cerebellum", "amount") == []

    def test_conjunctive_filters(self, amounts):
        assert (
            direct_values_at(
                amounts,
                "Purkinje_Dendrite",
                "amount",
                {"protein": "RyR", "amount": 999},
            )
            == []
        )


class TestAggregateOverDM:
    def test_sum_rollup(self, region_dm, amounts):
        dist = aggregate_over_dm(region_dm, amounts, "Cerebellum", "amount")
        assert dist.row("Purkinje_Dendrite").cumulative == 13.0
        assert dist.row("Purkinje_Cell").cumulative == 15.0
        assert dist.total() == 15.0

    def test_sibling_region_isolated(self, region_dm, amounts):
        dist = aggregate_over_dm(region_dm, amounts, "Cerebellum", "amount")
        assert dist.row("Pyramidal_Cell") is None  # not below Cerebellum
        brain = aggregate_over_dm(region_dm, amounts, "Brain", "amount")
        assert brain.total() == 22.0

    def test_group_filter(self, region_dm, amounts):
        dist = aggregate_over_dm(
            region_dm,
            amounts,
            "Cerebellum",
            "amount",
            group_attr="protein",
            group_value="RyR",
        )
        assert dist.total() == 5.0

    def test_extra_filters(self, region_dm, amounts):
        amounts.add(Atom("method_val", (Const("o1"), Const("organism"), Const("rat"))))
        dist = aggregate_over_dm(
            region_dm,
            amounts,
            "Cerebellum",
            "amount",
            filters={"organism": "rat"},
        )
        assert dist.total() == 3.0

    def test_count_and_avg(self, region_dm, amounts):
        count = aggregate_over_dm(
            region_dm, amounts, "Cerebellum", "amount", func="count"
        )
        assert count.total() == 3
        avg = aggregate_over_dm(
            region_dm, amounts, "Cerebellum", "amount", func="avg"
        )
        assert avg.total() == 5.0

    def test_min_max(self, region_dm, amounts):
        assert (
            aggregate_over_dm(
                region_dm, amounts, "Cerebellum", "amount", func="min"
            ).total()
            == 2.0
        )
        assert (
            aggregate_over_dm(
                region_dm, amounts, "Cerebellum", "amount", func="max"
            ).total()
            == 10.0
        )

    def test_unknown_func_rejected(self, region_dm, amounts):
        with pytest.raises(MediatorError):
            aggregate_over_dm(
                region_dm, amounts, "Cerebellum", "amount", func="median"
            )

    def test_empty_regions_report_none(self, region_dm, amounts):
        dist = aggregate_over_dm(region_dm, amounts, "Hippocampus", "amount")
        # Hippocampus itself has no direct values; Pyramidal_Cell does.
        assert dist.row("Hippocampus").direct is None
        assert dist.row("Hippocampus").cumulative == 7.0

    def test_depths_increase_down_tree(self, region_dm, amounts):
        dist = aggregate_over_dm(region_dm, amounts, "Brain", "amount")
        assert dist.row("Brain").depth == 0
        assert dist.row("Cerebellum").depth == 1
        assert dist.row("Purkinje_Dendrite").depth == 3

    def test_diamond_counts_once(self):
        dm = DomainMap("diamond")
        dm.add_axioms(
            """
            Top < exists has.Left
            Top < exists has.Right
            Left < exists has.Shared
            Right < exists has.Shared
            """
        )
        store = store_with(
            [
                ("anchor", "o1", "Shared"),
                ("method_val", "o1", "amount", 5.0),
            ]
        )
        dist = aggregate_over_dm(dm, store, "Top", "amount")
        assert dist.total() == 5.0  # not 10

    def test_as_table_and_str(self, region_dm, amounts):
        dist = aggregate_over_dm(region_dm, amounts, "Cerebellum", "amount")
        table = dist.as_table()
        assert table[0][0] == "Cerebellum"
        assert "Purkinje_Dendrite" in str(dist)

    def test_nonzero_rows(self, region_dm, amounts):
        dist = aggregate_over_dm(region_dm, amounts, "Cerebellum", "amount")
        assert all(
            row.direct_values or row.cumulative for row in dist.nonzero_rows()
        )
