"""Tests for query EXPLAIN: Mediator.explain on a CorrelationQuery."""

import json

import pytest

from repro import obs
from repro.core.planner import QueryExplain
from repro.neuro import build_scenario, section5_query

from .test_failure_handling import flaky_protein_source


@pytest.fixture(scope="module")
def explained():
    mediator = build_scenario(eager=False).mediator
    return mediator.explain(section5_query())


class TestQueryExplain:
    def test_correlation_query_dispatches_to_planner(self, explained):
        assert isinstance(explained, QueryExplain)

    def test_steps_carry_timing_and_cardinality(self, explained):
        kinds = [step["kind"] for step in explained.steps]
        assert kinds == [
            "push-selection",
            "select-sources",
            "retrieve",
            "compute-lub",
            "aggregate",
        ]
        assert [step["index"] for step in explained.steps] == [1, 2, 3, 4, 5]
        for step in explained.steps:
            assert step["seconds"] >= 0
            assert step["cardinality"] >= 1
        aggregate = explained.steps[-1]
        assert aggregate["cardinality"] == len(explained.context.answers)

    def test_explain_actually_executes(self, explained):
        proteins = {group for group, _d in explained.context.answers}
        assert "Calbindin" in proteins

    def test_metrics_recorded(self, explained):
        assert explained.metrics.counter_total("datalog.rule_firings") > 0
        assert explained.metrics.counter_total("source.queries") > 0

    def test_format_masked_is_deterministic(self, explained):
        text = explained.format(mask_timings=True)
        assert text == explained.format(mask_timings=True)
        assert text.startswith("EXPLAIN correlation plan (5 steps)")
        assert "time=--" in text
        assert "cardinality=" in text
        assert "degraded" not in text

    def test_as_dict_is_json_ready(self, explained):
        document = explained.as_dict(mask_timings=True)
        json.dumps(document)
        assert document["degraded"] is False
        assert document["skipped_sources"] == []
        assert all(step["seconds"] is None for step in document["steps"])

    def test_explain_leaves_no_tracer_installed(self):
        mediator = build_scenario(eager=False).mediator
        mediator.explain(section5_query())
        assert obs.active() is obs.NOOP

    def test_explain_nested_under_outer_tracer(self):
        """explain() uses a private tracer; the outer one is restored."""
        mediator = build_scenario(eager=False).mediator
        with obs.capture("outer") as outer:
            explained = mediator.explain(section5_query())
            assert obs.active() is outer
        assert explained.metrics.counter_total("planner.steps") == 5

    def test_degraded_explain_reports_skips(self):
        scenario = build_scenario(eager=False)
        scenario.mediator.register(flaky_protein_source(), eager=False)
        explained = scenario.mediator.explain(
            section5_query(), skip_failed_sources=True
        )
        assert explained.context.skipped_sources == ["FLAKY"]
        retrieve = next(
            step for step in explained.steps if step["kind"] == "retrieve"
        )
        assert retrieve["events"][0]["source"] == "FLAKY"
        text = explained.format(mask_timings=True)
        assert "degraded answer: skipped sources ['FLAKY']" in text
        assert "! FLAKY:" in text

    def test_degraded_explain_carries_the_degraded_answer(self):
        scenario = build_scenario(eager=False)
        scenario.mediator.register(flaky_protein_source(), eager=False)
        explained = scenario.mediator.explain(
            section5_query(), skip_failed_sources=True
        )
        report = explained.degraded_answer().report_for("FLAKY")
        assert report is not None
        assert report.status == "skipped"
        text = explained.format(mask_timings=True)
        assert "answer DEGRADED" in text
        assert "FLAKY" in text
        document = explained.as_dict(mask_timings=True)
        json.dumps(document)
        assert document["degraded_answer"]["degraded"] is True
        sources = {
            entry["source"]: entry
            for entry in document["degraded_answer"]["sources"]
        }
        assert sources["FLAKY"]["status"] == "skipped"

    def test_healthy_explain_degraded_answer_is_complete(self, explained):
        assert explained.degraded_answer().complete
        document = explained.as_dict(mask_timings=True)
        assert document["degraded_answer"]["degraded"] is False

    def test_explain_under_resilience_counts_guarded_calls(self):
        from repro.resilience import ResiliencePolicy, SourceGuard

        mediator = build_scenario(eager=False).mediator
        mediator.resilience = SourceGuard(ResiliencePolicy())
        explained = mediator.explain(section5_query())
        reports = explained.degraded_answer().sources
        assert {r.source for r in reports} == {"NCMIR", "SENSELAB"}
        assert all(r.status == "ok" for r in reports)
        # healthy guarded runs keep the EXPLAIN text clean
        assert "degraded" not in explained.format(mask_timings=True)

    def test_flogic_query_still_returns_derivation(self):
        mediator = build_scenario().mediator
        obj = sorted(
            row["X"]
            for row in mediator.ask("X : 'Compartment'")
            if str(row["X"]).startswith("NCMIR")
        )[0]
        derivation = mediator.explain("'%s' : 'Compartment'" % obj)
        assert not isinstance(derivation, QueryExplain)
        assert derivation is not None and derivation.format()
