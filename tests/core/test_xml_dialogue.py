"""Tests for the XML query/answer dialogue inside the mediator."""

import pytest

from repro.core import Mediator
from repro.neuro import (
    build_anatom,
    build_ncmir,
    build_senselab,
    build_synapse,
    section5_query,
)
from repro.sources import SourceQuery


def make_mediator(dialogue_via_xml):
    mediator = Mediator(
        build_anatom(), name="KIND", dialogue_via_xml=dialogue_via_xml
    )
    for wrapper in (build_synapse(2001), build_ncmir(2002), build_senselab(2003)):
        mediator.register(wrapper, eager=False)
    return mediator


class TestXMLDialogue:
    def test_source_query_equivalent(self):
        direct = make_mediator(False)
        wired = make_mediator(True)
        query = SourceQuery("neurotransmission", {"organism": "rat"})
        direct_rows = direct.source_query("SENSELAB", query)
        wired_rows = wired.source_query("SENSELAB", query)
        assert [r["_object"] for r in direct_rows] == [
            r["_object"] for r in wired_rows
        ]
        # wired rows keep their raw form for lifting
        assert all("_raw" in row for row in wired_rows)

    def test_query_messages_logged(self):
        wired = make_mediator(True)
        wired.source_query(
            "SENSELAB", SourceQuery("neurotransmission", {"organism": "rat"})
        )
        kinds = [name for name, _size in wired.wire_log]
        assert "query:SENSELAB.neurotransmission" in kinds

    def test_plan_answers_identical_over_the_wire(self):
        direct = make_mediator(False)
        wired = make_mediator(True)
        _p1, c1 = direct.correlate(section5_query())
        _p2, c2 = wired.correlate(section5_query())
        assert [(g, d.total()) for g, d in c1.answers] == [
            (g, d.total()) for g, d in c2.answers
        ]

    def test_lazy_ask_over_the_wire(self):
        direct = make_mediator(False)
        wired = make_mediator(True)
        query = "X : neurotransmission[organism -> rat; receiving_neuron -> N]"
        assert wired.ask_lazy(query)[0] == direct.ask_lazy(query)[0]


class TestPlanVsEagerData:
    def test_plan_filters_not_undone_by_eager_data(self):
        from repro.neuro import build_scenario

        eager = build_scenario().mediator
        lazy = build_scenario(eager=False).mediator
        _pe, ce = eager.correlate(section5_query())
        _pl, cl = lazy.correlate(section5_query())
        assert [(g, d.total()) for g, d in ce.answers] == [
            (g, d.total()) for g, d in cl.answers
        ]

    def test_only_retrieved_locations_contribute(self):
        from repro.neuro import build_scenario

        mediator = build_scenario().mediator
        _plan, context = mediator.correlate(section5_query())
        for _group, distribution in context.answers:
            concepts_with_values = {
                row.concept
                for row in distribution.rows
                if row.direct is not None
            }
            assert concepts_with_values <= {
                "Purkinje_Cell",
                "Purkinje_Dendrite",
            }

    def test_organism_filter_applied(self):
        from repro.neuro import build_scenario

        mediator = build_scenario().mediator
        _plan, context = mediator.correlate(section5_query())
        assert all(
            row["organism"] == "rat" for _source, row in context.retrieved
        )
