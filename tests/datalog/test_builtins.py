"""Unit tests for builtin comparison/arithmetic evaluation."""

import pytest

from repro.datalog.ast import Assignment, Comparison
from repro.datalog.builtins import (
    compare_values,
    evaluate_expression,
    solve_assignment,
    solve_comparison,
)
from repro.datalog.terms import Const, Struct, Var
from repro.errors import EvaluationError


class TestExpressionEvaluation:
    def test_constant(self):
        assert evaluate_expression(Const(5), {}) == 5

    def test_variable_lookup(self):
        assert evaluate_expression(Var("X"), {Var("X"): Const(7)}) == 7

    def test_unbound_variable_raises(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Var("X"), {})

    @pytest.mark.parametrize(
        "functor,args,expected",
        [
            ("+", (2, 3), 5),
            ("-", (2, 3), -1),
            ("*", (4, 3), 12),
            ("/", (7, 2), 3.5),
            ("//", (7, 2), 3),
            ("mod", (7, 3), 1),
            ("min", (7, 3), 3),
            ("max", (7, 3), 7),
        ],
    )
    def test_binary_operators(self, functor, args, expected):
        expr = Struct(functor, (Const(args[0]), Const(args[1])))
        assert evaluate_expression(expr, {}) == expected

    def test_unary_minus_and_abs(self):
        assert evaluate_expression(Struct("-", (Const(4),)), {}) == -4
        assert evaluate_expression(Struct("abs", (Const(-4),)), {}) == 4

    def test_nested_expression(self):
        expr = Struct("+", (Struct("*", (Const(2), Const(3))), Const(1)))
        assert evaluate_expression(expr, {}) == 7

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Struct("/", (Const(1), Const(0))), {})

    def test_type_error_wrapped(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Struct("-", (Const("abc"),)), {})

    def test_unknown_functor(self):
        with pytest.raises(EvaluationError):
            evaluate_expression(Struct("pow", (Const(2), Const(3))), {})


class TestCompareValues:
    def test_numeric_order(self):
        assert compare_values("<", 1, 2)
        assert compare_values(">=", 2.0, 2)
        assert not compare_values(">", 1, 2)

    def test_string_order(self):
        assert compare_values("<", "abc", "abd")

    def test_mixed_types_total_order(self):
        # numbers sort before non-numbers; never raises
        assert compare_values("<", 5, "a")
        assert not compare_values("<", "a", 5)

    def test_equality_across_types(self):
        assert not compare_values("=", 1, "1")
        assert compare_values("!=", 1, "1")

    def test_bool_comparisons_numeric(self):
        assert compare_values("<", False, True)
        assert compare_values("=", 1, True)  # Python semantics preserved


class TestSolvers:
    def test_comparison_filters(self):
        item = Comparison("<", Var("X"), Const(5))
        assert list(solve_comparison(item, {Var("X"): Const(3)})) != []
        assert list(solve_comparison(item, {Var("X"): Const(9)})) == []

    def test_equality_unifies(self):
        item = Comparison("=", Var("X"), Const(3))
        results = list(solve_comparison(item, {}))
        assert len(results) == 1
        assert results[0][Var("X")] == Const(3)

    def test_unbound_strict_comparison_raises(self):
        item = Comparison("<", Var("X"), Const(5))
        with pytest.raises(EvaluationError):
            list(solve_comparison(item, {}))

    def test_assignment_binds(self):
        item = Assignment(Var("Y"), Struct("+", (Const(1), Const(2))))
        results = list(solve_assignment(item, {}))
        assert results[0][Var("Y")] == Const(3)

    def test_assignment_as_check(self):
        item = Assignment(Var("Y"), Const(3))
        assert list(solve_assignment(item, {Var("Y"): Const(3)})) != []
        assert list(solve_assignment(item, {Var("Y"): Const(4)})) == []
