"""Property-based tests (hypothesis) for the Datalog substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Atom,
    Const,
    FactStore,
    Program,
    Rule,
    Struct,
    Var,
    evaluate,
    fact,
    parse_program,
    substitute,
    unify,
    well_founded_model,
)

# -- term strategies --------------------------------------------------

constants = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["a", "b", "c", "neuron", "spine"]),
).map(Const)

variables = st.sampled_from(["X", "Y", "Z"]).map(Var)


def terms(depth=2):
    if depth == 0:
        return st.one_of(constants, variables)
    return st.one_of(
        constants,
        variables,
        st.builds(
            lambda f, args: Struct(f, tuple(args)),
            st.sampled_from(["f", "g"]),
            st.lists(terms(depth - 1), min_size=1, max_size=2),
        ),
    )


ground_terms = st.one_of(
    constants,
    st.builds(
        lambda f, args: Struct(f, tuple(args)),
        st.sampled_from(["f", "g"]),
        st.lists(constants, min_size=1, max_size=2),
    ),
)


class TestUnificationProperties:
    @given(terms(), terms())
    def test_unify_produces_common_instance(self, t1, t2):
        subst = unify(t1, t2)
        if subst is not None:
            assert substitute(t1, subst) == substitute(t2, subst)

    @given(terms(), terms())
    def test_unify_symmetric_in_success(self, t1, t2):
        assert (unify(t1, t2) is None) == (unify(t2, t1) is None)

    @given(terms())
    def test_unify_reflexive(self, t):
        assert unify(t, t) == {}

    @given(ground_terms, ground_terms)
    def test_ground_unification_is_equality(self, t1, t2):
        subst = unify(t1, t2)
        assert (subst == {}) == (t1 == t2)
        if t1 != t2:
            assert subst is None

    @given(terms(), ground_terms)
    def test_substitution_after_unify_with_ground_is_ground(self, pattern, ground):
        subst = unify(pattern, ground)
        if subst is not None:
            assert substitute(pattern, subst) == ground


# -- graph / closure properties ---------------------------------------

edges_strategy = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=0,
    max_size=20,
)


def _tc_reference(edges):
    """Reference transitive closure via simple fixpoint over pairs."""
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


class TestEngineProperties:
    @settings(max_examples=40, deadline=None)
    @given(edges_strategy)
    def test_transitive_closure_matches_reference(self, edges):
        program = Program()
        for a, b in edges:
            program.add(fact("edge", Const(a), Const(b)))
        program.extend(
            parse_program(
                "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y)."
            )
        )
        result = evaluate(program)
        computed = {
            (atom.args[0].value, atom.args[1].value)
            for atom in result.store.iter_atoms("tc")
        }
        assert computed == _tc_reference(edges)

    @settings(max_examples=30, deadline=None)
    @given(edges_strategy)
    def test_model_is_minimal_fixpoint(self, edges):
        # Evaluating twice (feeding the model back as facts) must not
        # grow the model: the output is a fixpoint.
        program = Program()
        for a, b in edges:
            program.add(fact("edge", Const(a), Const(b)))
        program.extend(
            parse_program(
                "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y)."
            )
        )
        result = evaluate(program)
        again = Program(result.store.iter_atoms() and [])
        for atom in result.store.iter_atoms():
            again.add(Rule(atom))
        again.extend(
            parse_program(
                "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y)."
            )
        )
        assert evaluate(again).store.same_facts(result.store)

    @settings(max_examples=30, deadline=None)
    @given(edges_strategy)
    def test_wfs_of_win_move_partitions(self, edges):
        # True wins, false wins, and undefined positions partition nodes
        # with outgoing moves; no node is both true and undefined.
        program = Program()
        nodes = set()
        for a, b in edges:
            program.add(fact("move", Const(a), Const(b)))
            nodes.update((a, b))
        program.extend(parse_program("win(X) :- move(X, Y), not win(Y)."))
        true_store, undefined = well_founded_model(program)
        true_wins = {a.args[0].value for a in true_store.iter_atoms("win")}
        undef_wins = {a.args[0].value for a in undefined.iter_atoms("win")}
        assert not (true_wins & undef_wins)
        assert true_wins | undef_wins <= nodes

    @settings(max_examples=30, deadline=None)
    @given(edges_strategy)
    def test_wfs_win_consistency(self, edges):
        # If win(x) is true, some move x->y has win(y) definitely false.
        program = Program()
        for a, b in edges:
            program.add(fact("move", Const(a), Const(b)))
        program.extend(parse_program("win(X) :- move(X, Y), not win(Y)."))
        true_store, undefined = well_founded_model(program)
        true_wins = {a.args[0].value for a in true_store.iter_atoms("win")}
        undef_wins = {a.args[0].value for a in undefined.iter_atoms("win")}
        moves = {}
        for a, b in edges:
            moves.setdefault(a, set()).add(b)
        for x in true_wins:
            successors = moves.get(x, set())
            assert any(
                y not in true_wins and y not in undef_wins for y in successors
            )


class TestFactStoreProperties:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30))
    def test_store_deduplicates(self, pairs):
        store = FactStore()
        for a, b in pairs:
            store.add(Atom("p", (Const(a), Const(b))))
        assert len(store) == len(set(pairs))

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30))
    def test_candidates_superset_of_matches(self, pairs):
        store = FactStore()
        for a, b in pairs:
            store.add(Atom("p", (Const(a), Const(b))))
        goal = Atom("p", (Const(3), Var("Y")))
        candidates = set(store.candidates(goal, {}))
        matching = {
            (Const(a), Const(b)) for a, b in set(pairs) if a == 3
        }
        assert matching <= candidates

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=30))
    def test_copy_independent(self, pairs):
        store = FactStore()
        for a, b in pairs:
            store.add(Atom("p", (Const(a), Const(b))))
        clone = store.copy()
        clone.add(Atom("p", (Const(99), Const(99))))
        assert len(clone) == len(store) + 1
