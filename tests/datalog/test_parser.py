"""Unit tests for the Datalog parser."""

import pytest

from repro.datalog import (
    AggregateLiteral,
    Assignment,
    Atom,
    Comparison,
    Const,
    Literal,
    Struct,
    Var,
    parse_atom,
    parse_program,
    parse_rule,
    parse_term,
)
from repro.errors import ParseError


class TestTerms:
    def test_symbol_becomes_const(self):
        assert parse_term("abc") == Const("abc")

    def test_uppercase_becomes_var(self):
        assert parse_term("X") == Var("X")
        assert parse_term("Foo") == Var("Foo")

    def test_underscore_prefixed_is_var(self):
        assert parse_term("_x") == Var("_x")

    def test_bare_underscore_is_fresh_anonymous(self):
        term = parse_term("_")
        assert isinstance(term, Var)
        assert term.is_anonymous

    def test_integer(self):
        assert parse_term("42") == Const(42)

    def test_negative_integer(self):
        assert parse_term("-7") == Const(-7)

    def test_float(self):
        assert parse_term("3.25") == Const(3.25)

    def test_double_quoted_string(self):
        assert parse_term('"Purkinje Cell"') == Const("Purkinje Cell")

    def test_single_quoted_string(self):
        assert parse_term("'Pyramidal Cell dendrite'") == Const("Pyramidal Cell dendrite")

    def test_escaped_quote(self):
        assert parse_term(r"'it\'s'") == Const("it's")

    def test_struct_term(self):
        assert parse_term("f(a, X)") == Struct("f", (Const("a"), Var("X")))

    def test_nested_struct(self):
        assert parse_term("f(g(X), 1)") == Struct(
            "f", (Struct("g", (Var("X"),)), Const(1))
        )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_term("a b")


class TestAtomsAndRules:
    def test_fact(self):
        rule = parse_rule("edge(a, b).")
        assert rule.is_fact
        assert rule.head == Atom("edge", (Const("a"), Const("b")))

    def test_zero_arity_atom(self):
        rule = parse_rule("ok.")
        assert rule.head == Atom("ok")

    def test_quoted_predicate_name(self):
        atom = parse_atom("'NCMIR'(X)")
        assert atom.pred == "NCMIR"

    def test_rule_with_body(self):
        rule = parse_rule("tc(X, Y) :- edge(X, Z), tc(Z, Y).")
        assert rule.head.pred == "tc"
        assert len(rule.body) == 2
        assert all(isinstance(item, Literal) for item in rule.body)

    def test_negated_literal(self):
        rule = parse_rule("p(X) :- q(X), not r(X).")
        assert rule.body[1] == Literal(Atom("r", (Var("X"),)), positive=False)

    def test_comparison(self):
        rule = parse_rule("p(X) :- q(X), X != 3.")
        assert rule.body[1] == Comparison("!=", Var("X"), Const(3))

    def test_all_comparison_operators(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            rule = parse_rule("p(X) :- q(X), X %s 3." % op)
            assert isinstance(rule.body[1], Comparison)
            assert rule.body[1].op == op

    def test_assignment(self):
        rule = parse_rule("p(X, Y) :- q(X), Y is X + 1.")
        item = rule.body[1]
        assert isinstance(item, Assignment)
        assert item.target == Var("Y")
        assert item.expr == Struct("+", (Var("X"), Const(1)))

    def test_arithmetic_precedence(self):
        rule = parse_rule("p(Y) :- q(X), Y is X + 2 * 3.")
        expr = rule.body[1].expr
        assert expr == Struct("+", (Var("X"), Struct("*", (Const(2), Const(3)))))

    def test_arithmetic_parentheses(self):
        rule = parse_rule("p(Y) :- q(X), Y is (X + 2) * 3.")
        expr = rule.body[1].expr
        assert expr == Struct("*", (Struct("+", (Var("X"), Const(2))), Const(3)))

    def test_unary_minus_in_expression(self):
        rule = parse_rule("p(Y) :- q(X), Y is -X + 1.")
        expr = rule.body[1].expr
        assert expr == Struct("+", (Struct("-", (Var("X"),)), Const(1)))

    def test_mod_operator(self):
        rule = parse_rule("p(Y) :- q(X), Y is X mod 2.")
        assert rule.body[1].expr == Struct("mod", (Var("X"), Const(2)))

    def test_missing_period_rejected(self):
        with pytest.raises(ParseError):
            parse_rule("p(X) :- q(X)")

    def test_parse_error_reports_line_and_column(self):
        try:
            parse_program("p(a).\nq(b) :- .")
        except ParseError as exc:
            assert exc.line == 2
            assert exc.column is not None
        else:
            pytest.fail("expected ParseError")


class TestAggregates:
    def test_count_with_grouping(self):
        rule = parse_rule("w(VB, N) :- rel(VB), N = count{VA [VB]; r(VA, VB)}.")
        agg = rule.body[1]
        assert isinstance(agg, AggregateLiteral)
        assert agg.func == "count"
        assert agg.result == Var("N")
        assert agg.value == Var("VA")
        assert agg.group_by == (Var("VB"),)

    def test_count_without_grouping(self):
        rule = parse_rule("total(N) :- N = count{X; p(X)}.")
        agg = rule.body[0]
        assert agg.group_by == ()

    def test_sum_aggregate(self):
        rule = parse_rule("t(G, S) :- g(G), S = sum{V [G]; amount(G, V)}.")
        assert rule.body[1].func == "sum"

    def test_aggregate_body_with_comparison(self):
        rule = parse_rule("big(N) :- N = count{X; p(X), X > 3}.")
        agg = rule.body[0]
        assert len(agg.body) == 2

    def test_equals_non_aggregate_still_comparison(self):
        rule = parse_rule("p(X) :- q(X, Y), X = Y.")
        assert isinstance(rule.body[1], Comparison)

    def test_unknown_aggregate_function_is_plain_comparison(self):
        # 'median' is not an aggregate keyword, so `N = median` parses as
        # a comparison with the constant `median` and then `{` fails.
        with pytest.raises(ParseError):
            parse_rule("p(N) :- N = median{X; q(X)}.")


class TestPrograms:
    def test_empty_program(self):
        assert len(parse_program("")) == 0

    def test_comments_ignored(self):
        program = parse_program(
            """
            % transitive closure
            edge(a, b).  % a fact
            tc(X, Y) :- edge(X, Y).
            """
        )
        assert len(program) == 2

    def test_duplicate_clauses_deduped(self):
        program = parse_program("p(a). p(a). p(b).")
        assert len(program) == 2

    def test_predicates_classification(self):
        program = parse_program(
            """
            edge(a, b).
            tc(X, Y) :- edge(X, Y).
            """
        )
        assert program.edb_predicates() == {("edge", 2)}
        assert program.idb_predicates() == {("tc", 2)}

    def test_roundtrip_through_str(self):
        text = """
        edge(a, b).
        tc(X, Y) :- edge(X, Y), not bad(X), X != b.
        """
        program = parse_program(text)
        reparsed = parse_program(str(program))
        assert set(program.rules) == set(reparsed.rules)

    def test_illegal_character(self):
        with pytest.raises(ParseError):
            parse_program("p(a) ?")
