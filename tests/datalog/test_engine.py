"""Unit tests for stratified and well-founded evaluation."""

import pytest

from repro.datalog import (
    Atom,
    Const,
    FactStore,
    Struct,
    Var,
    evaluate,
    parse_atom,
    parse_program,
    query,
    well_founded_model,
)
from repro.errors import EvaluationError, SafetyError, StratificationError


def answers(program_text, goal_text):
    return query(parse_program(program_text), parse_atom(goal_text))


class TestBasicEvaluation:
    def test_facts_only(self):
        assert answers("p(a). p(b).", "p(X)") == [{"X": "a"}, {"X": "b"}]

    def test_single_join(self):
        rows = answers(
            "parent(ann, bob). parent(bob, cal). "
            "grand(X, Z) :- parent(X, Y), parent(Y, Z).",
            "grand(X, Z)",
        )
        assert rows == [{"X": "ann", "Z": "cal"}]

    def test_ground_goal_success(self):
        rows = answers("p(a).", "p(a)")
        assert rows == [{}]

    def test_ground_goal_failure(self):
        assert answers("p(a).", "p(b)") == []

    def test_transitive_closure(self):
        rows = answers(
            """
            edge(1, 2). edge(2, 3). edge(3, 4).
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            """,
            "tc(1, Y)",
        )
        assert [r["Y"] for r in rows] == [2, 3, 4]

    def test_left_recursion(self):
        rows = answers(
            """
            edge(1, 2). edge(2, 3).
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- tc(X, Z), edge(Z, Y).
            """,
            "tc(X, Y)",
        )
        assert len(rows) == 3

    def test_nonlinear_recursion(self):
        rows = answers(
            """
            edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5).
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- tc(X, Z), tc(Z, Y).
            """,
            "tc(1, Y)",
        )
        assert [r["Y"] for r in rows] == [2, 3, 4, 5]

    def test_cyclic_graph_terminates(self):
        rows = answers(
            """
            edge(a, b). edge(b, a).
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            """,
            "tc(a, Y)",
        )
        assert sorted(r["Y"] for r in rows) == ["a", "b"]

    def test_mutual_recursion(self):
        rows = answers(
            """
            num(0). succ(0, 1). succ(1, 2). succ(2, 3).
            even(0).
            odd(Y) :- even(X), succ(X, Y).
            even(Y) :- odd(X), succ(X, Y).
            """,
            "even(X)",
        )
        assert [r["X"] for r in rows] == [0, 2]

    def test_repeated_variable_in_body_atom(self):
        rows = answers(
            "e(a, a). e(a, b). loop(X) :- e(X, X).",
            "loop(X)",
        )
        assert rows == [{"X": "a"}]

    def test_constants_in_rule_body(self):
        rows = answers(
            "p(a, 1). p(b, 2). q(X) :- p(X, 2).",
            "q(X)",
        )
        assert rows == [{"X": "b"}]

    def test_zero_arity_predicates(self):
        rows = answers("go. p(a) :- go.", "p(X)")
        assert rows == [{"X": "a"}]


class TestNegation:
    def test_stratified_negation(self):
        rows = answers(
            """
            node(a). node(b). node(c).
            edge(a, b).
            touched(X) :- edge(X, _).
            touched(Y) :- edge(_, Y).
            isolated(X) :- node(X), not touched(X).
            """,
            "isolated(X)",
        )
        assert rows == [{"X": "c"}]

    def test_negation_of_empty_predicate(self):
        rows = answers(
            "p(a). q(X) :- p(X), not missing(X).",
            "q(X)",
        )
        assert rows == [{"X": "a"}]

    def test_double_stratification(self):
        rows = answers(
            """
            a(1). a(2). a(3).
            b(X) :- a(X), not c(X).
            c(1).
            d(X) :- a(X), not b(X).
            """,
            "d(X)",
        )
        assert rows == [{"X": 1}]

    def test_set_difference(self):
        rows = answers(
            "s(a). s(b). t(b). diff(X) :- s(X), not t(X).",
            "diff(X)",
        )
        assert rows == [{"X": "a"}]


class TestWellFounded:
    def test_win_move_determined(self):
        program = parse_program(
            """
            move(a, b). move(b, c).
            win(X) :- move(X, Y), not win(Y).
            """
        )
        result = evaluate(program)
        assert result.used_well_founded
        assert result.is_true(parse_atom("win(b)"))
        assert not result.is_true(parse_atom("win(a)"))
        assert len(result.undefined) == 0

    def test_win_move_undefined_cycle(self):
        program = parse_program(
            """
            move(a, b). move(b, a).
            win(X) :- move(X, Y), not win(Y).
            """
        )
        true_store, undefined = well_founded_model(program)
        assert len(true_store.rows(("win", 1))) == 0
        undefined_atoms = {str(a) for a in undefined.sorted_atoms("win")}
        assert undefined_atoms == {"win(a)", "win(b)"}

    def test_cycle_with_escape(self):
        # a <-> b, b -> c (c is lost) so win(b) is true, win(a) false.
        program = parse_program(
            """
            move(a, b). move(b, a). move(b, c).
            win(X) :- move(X, Y), not win(Y).
            """
        )
        true_store, undefined = well_founded_model(program)
        assert {str(a) for a in true_store.sorted_atoms("win")} == {"win(b)"}
        assert len(undefined.rows(("win", 1))) == 0

    def test_stratified_program_agrees_with_wfs(self):
        text = """
        node(a). node(b). edge(a, b).
        touched(X) :- edge(X, _).
        isolated(X) :- node(X), not touched(X).
        """
        program = parse_program(text)
        stratified = evaluate(program)
        true_store, undefined = well_founded_model(program)
        assert len(undefined) == 0
        assert stratified.store.same_facts(true_store)

    def test_mutual_negation_both_undefined(self):
        program = parse_program(
            """
            seed.
            p :- seed, not q.
            q :- seed, not p.
            """
        )
        true_store, undefined = well_founded_model(program)
        assert not true_store.contains(Atom("p"))
        assert not true_store.contains(Atom("q"))
        assert undefined.contains(Atom("p"))
        assert undefined.contains(Atom("q"))

    def test_evaluate_reports_wf_fallback_flag(self):
        program = parse_program("p(a). q(X) :- p(X).")
        assert not evaluate(program).used_well_founded


class TestBuiltins:
    def test_comparison_filters(self):
        rows = answers("v(1). v(5). big(X) :- v(X), X > 3.", "big(X)")
        assert rows == [{"X": 5}]

    def test_equality_binds(self):
        rows = answers("v(1). p(X, Y) :- v(X), Y = X.", "p(X, Y)")
        assert rows == [{"X": 1, "Y": 1}]

    def test_inequality_on_strings(self):
        rows = answers(
            "c(a). c(b). pair(X, Y) :- c(X), c(Y), X != Y.",
            "pair(X, Y)",
        )
        assert len(rows) == 2

    def test_mixed_type_comparison_does_not_raise(self):
        rows = answers(
            "v(1). v(abc). small(X) :- v(X), X < zzz.",
            "small(X)",
        )
        # numbers sort before non-numbers in the engine's total order
        assert {r["X"] for r in rows} == {1, "abc"}

    def test_arithmetic_chain(self):
        rows = answers(
            "v(3). p(Z) :- v(X), Y is X * X, Z is Y + 1.",
            "p(Z)",
        )
        assert rows == [{"Z": 10}]

    def test_division_by_zero_raises(self):
        program = parse_program("v(1). p(Y) :- v(X), Y is X / 0.")
        with pytest.raises(EvaluationError):
            evaluate(program)

    def test_comparison_reordered_after_binding(self):
        # X > 3 written before v(X): the scheduler must defer it.
        rows = answers("v(1). v(5). big(X) :- X > 3, v(X).", "big(X)")
        assert rows == [{"X": 5}]

    def test_float_arithmetic(self):
        rows = answers("v(1). p(Y) :- v(X), Y is X / 2.", "p(Y)")
        assert rows == [{"Y": 0.5}]


class TestAggregates:
    def test_count_groups(self):
        rows = answers(
            """
            r(n1, a1). r(n1, a2). r(n2, a3).
            cnt(VB, N) :- r(VB, _), N = count{VA [VB]; r(VB, VA)}.
            """,
            "cnt(B, N)",
        )
        assert rows == [{"B": "n1", "N": 2}, {"B": "n2", "N": 1}]

    def test_count_distinct_semantics(self):
        rows = answers(
            """
            r(n1, a1). r(n1, a1).
            cnt(N) :- N = count{VA; r(_, VA)}.
            """,
            "cnt(N)",
        )
        assert rows == [{"N": 1}]

    def test_global_count(self):
        rows = answers("p(a). p(b). p(c). n(N) :- N = count{X; p(X)}.", "n(N)")
        assert rows == [{"N": 3}]

    def test_sum(self):
        rows = answers(
            "amount(x, 3). amount(x, 4). amount(y, 5). "
            "t(G, S) :- amount(G, _), S = sum{V [G]; amount(G, V)}.",
            "t(G, S)",
        )
        assert rows == [{"G": "x", "S": 7}, {"G": "y", "S": 5}]

    def test_min_max(self):
        program = "m(1). m(5). m(3). lo(X) :- X = min{V; m(V)}. hi(X) :- X = max{V; m(V)}."
        assert answers(program, "lo(X)") == [{"X": 1}]
        assert answers(program, "hi(X)") == [{"X": 5}]

    def test_avg(self):
        rows = answers("m(2). m(4). a(X) :- X = avg{V; m(V)}.", "a(X)")
        assert rows == [{"X": 3.0}]

    def test_empty_aggregate_yields_no_groups(self):
        rows = answers("seed. n(N) :- seed, N = count{X [X]; p(X)}.", "n(N)")
        assert rows == []

    def test_aggregate_with_inner_filter(self):
        rows = answers(
            "m(1). m(5). m(7). n(N) :- N = count{V; m(V), V > 2}.",
            "n(N)",
        )
        assert rows == [{"N": 2}]

    def test_sum_over_strings_raises(self):
        program = parse_program("m(a). s(X) :- X = sum{V; m(V)}.")
        with pytest.raises(EvaluationError):
            evaluate(program)

    def test_aggregate_over_derived_predicate(self):
        rows = answers(
            """
            e(a, b). e(b, c).
            tc(X, Y) :- e(X, Y).
            tc(X, Y) :- e(X, Z), tc(Z, Y).
            reach(X, N) :- e(X, _), N = count{Y [X]; tc(X, Y)}.
            """,
            "reach(a, N)",
        )
        assert rows == [{"N": 2}]

    def test_recursive_aggregate_rejected(self):
        program = parse_program(
            "p(a, 1). p(X, N) :- q(X), N = count{Y; p(Y, _)}. q(X) :- p(X, _)."
        )
        with pytest.raises(StratificationError):
            evaluate(program)


class TestSkolems:
    def test_struct_head_creates_object(self):
        program = parse_program("a(x1). a(x2). b(f(X)) :- a(X).")
        result = evaluate(program)
        facts = {str(atom) for atom in result.store.sorted_atoms("b")}
        assert facts == {"b(f(x1))", "b(f(x2))"}

    def test_struct_join(self):
        rows = answers(
            "holds(f(a), 1). key(f(a)). v(V) :- key(K), holds(K, V).",
            "v(V)",
        )
        assert rows == [{"V": 1}]

    def test_skolem_guarded_recursion_terminates(self):
        # One level of skolemization guarded by negation-free base.
        program = parse_program(
            """
            c(x).
            d(f(X)) :- c(X), not has(X).
            has_any(Y) :- d(Y).
            """
        )
        result = evaluate(program)
        assert result.store.contains(Atom("d", (Struct("f", (Const("x"),)),)))


class TestTerminationGuard:
    def test_unbounded_skolem_recursion_guarded(self):
        program = parse_program("n(z). n(s(X)) :- n(X).")
        with pytest.raises(EvaluationError, match="max_facts"):
            evaluate(program, max_facts=500)

    def test_guard_does_not_fire_on_terminating_programs(self):
        program = parse_program(
            """
            edge(a, b). edge(b, c).
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            """
        )
        result = evaluate(program, max_facts=100)
        assert len(result.store.rows(("tc", 2))) == 3

    def test_deeply_nested_terms_survive(self):
        # bounded skolem nesting well past the Python recursion limit
        program = parse_program(
            """
            n(0, z).
            n(M, s(X)) :- n(K, X), K < 2000, M is K + 1.
            """
        )
        result = evaluate(program, max_facts=10_000)
        assert len(result.store.rows(("n", 2))) == 2001


class TestSafetyIntegration:
    def test_unbound_head_var_rejected(self):
        with pytest.raises(SafetyError):
            evaluate(parse_program("p(X, Y) :- q(X)."))

    def test_negation_only_var_rejected(self):
        with pytest.raises(SafetyError):
            evaluate(parse_program("p(X) :- q(X), not r(Y)."))

    def test_comparison_only_var_rejected(self):
        with pytest.raises(SafetyError):
            evaluate(parse_program("p(X) :- q(X), Y > 3."))

    def test_equality_chain_is_safe(self):
        rows = answers("q(1). p(Y) :- q(X), Y = X.", "p(Y)")
        assert rows == [{"Y": 1}]

    def test_constant_equality_makes_safe(self):
        rows = answers("seed. p(X) :- seed, X = 5.", "p(X)")
        assert rows == [{"X": 5}]


class TestEvaluationResult:
    def test_facts_listing_deterministic(self):
        program = parse_program("p(b). p(a). p(c).")
        result = evaluate(program)
        assert [str(a) for a in result.facts("p")] == ["p(a)", "p(b)", "p(c)"]

    def test_strata_recorded(self):
        program = parse_program("e(a, b). t(X, Y) :- e(X, Y). u(X) :- t(X, _), not e(X, X).")
        result = evaluate(program)
        assert result.strata is not None
        assert len(result.strata) >= 2
