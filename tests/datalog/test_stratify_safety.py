"""Unit tests for stratification and safety analysis."""

import pytest

from repro.datalog import (
    is_aggregate_stratified,
    is_stratifiable,
    parse_program,
    parse_rule,
    stratify,
)
from repro.datalog.safety import check_rule_safety
from repro.datalog.stratify import build_dependency_graph
from repro.errors import SafetyError, StratificationError


class TestDependencyGraph:
    def test_positive_edges(self):
        program = parse_program("p(X) :- q(X), r(X).")
        info = build_dependency_graph(program)
        assert info.graph.has_edge(("p", 1), ("q", 1))
        assert info.graph.has_edge(("p", 1), ("r", 1))
        assert not info.negative_edges

    def test_negative_edge_recorded(self):
        program = parse_program("p(X) :- q(X), not r(X).")
        info = build_dependency_graph(program)
        assert (("p", 1), ("r", 1)) in info.negative_edges

    def test_aggregate_edge_recorded(self):
        program = parse_program("p(N) :- N = count{X; q(X)}.")
        info = build_dependency_graph(program)
        assert (("p", 1), ("q", 1)) in info.aggregate_edges

    def test_arity_distinguishes_predicates(self):
        program = parse_program("p(X) :- p(X, X).")
        info = build_dependency_graph(program)
        assert info.graph.has_edge(("p", 1), ("p", 2))


class TestStratify:
    def test_single_stratum_for_positive_program(self):
        program = parse_program(
            "e(a, b). t(X, Y) :- e(X, Y). t(X, Y) :- e(X, Z), t(Z, Y)."
        )
        strata = stratify(program)
        assert len(strata) == 1

    def test_negation_splits_strata(self):
        program = parse_program(
            """
            b(a).
            p(X) :- b(X), not q(X).
            q(X) :- b(X), not r(X).
            r(a).
            """
        )
        strata = stratify(program)
        index = {sig: i for i, stratum in enumerate(strata) for sig in stratum}
        assert index[("r", 1)] < index[("q", 1)] < index[("p", 1)]

    def test_negative_cycle_rejected(self):
        program = parse_program("p(X) :- b(X), not q(X). q(X) :- b(X), not p(X). b(a).")
        with pytest.raises(StratificationError):
            stratify(program)
        assert not is_stratifiable(program)

    def test_self_negation_rejected(self):
        program = parse_program("b(a). p(X) :- b(X), not p(X).")
        with pytest.raises(StratificationError):
            stratify(program)

    def test_aggregate_cycle_rejected(self):
        program = parse_program(
            "base(a, 1). p(X, N) :- base(X, _), N = count{Y; p(Y, _)}."
        )
        with pytest.raises(StratificationError):
            stratify(program)
        assert not is_aggregate_stratified(program)

    def test_aggregate_over_lower_stratum_ok(self):
        program = parse_program(
            "q(a). q(b). p(N) :- N = count{X; q(X)}."
        )
        strata = stratify(program)
        index = {sig: i for i, stratum in enumerate(strata) for sig in stratum}
        assert index[("q", 1)] < index[("p", 1)]

    def test_wf_fallback_allowed_for_negation_only(self):
        program = parse_program(
            "move(a, b). win(X) :- move(X, Y), not win(Y)."
        )
        assert not is_stratifiable(program)
        assert is_aggregate_stratified(program)


class TestSafety:
    def safe(self, text):
        check_rule_safety(parse_rule(text))

    def unsafe(self, text):
        with pytest.raises(SafetyError):
            check_rule_safety(parse_rule(text))

    def test_plain_positive_rule_safe(self):
        self.safe("p(X) :- q(X).")

    def test_fact_safe(self):
        self.safe("p(a).")

    def test_head_var_not_in_body(self):
        self.unsafe("p(X, Y) :- q(X).")

    def test_nonground_fact_unsafe(self):
        self.unsafe("p(X).")

    def test_negated_only_var(self):
        self.unsafe("p(X) :- q(X), not r(Z).")

    def test_anonymous_var_under_negation_allowed(self):
        self.safe("p(X) :- q(X), not r(X, _).")

    def test_comparison_var_unbound(self):
        self.unsafe("p(X) :- q(X), Z < 3.")

    def test_equality_to_constant_limits(self):
        self.safe("p(X) :- q(_), X = 3.")

    def test_equality_chain_limits(self):
        self.safe("p(Z) :- q(X), Y = X, Z = Y.")

    def test_struct_equality_limits_components(self):
        self.safe("p(A, B) :- q(X), f(A, B) = X.")

    def test_assignment_limits_target(self):
        self.safe("p(Y) :- q(X), Y is X + 1.")

    def test_assignment_with_unbound_expr(self):
        self.unsafe("p(Y) :- q(X), Y is Z + 1.")

    def test_aggregate_result_limits_head(self):
        self.safe("p(N) :- N = count{X; q(X)}.")

    def test_aggregate_group_var_limited(self):
        self.safe("p(G, N) :- N = count{X [G]; q(G, X)}.")

    def test_aggregate_value_unbound_in_body(self):
        self.unsafe("p(N) :- N = count{Z; q(X)}.")

    def test_aggregate_group_unbound_in_body(self):
        self.unsafe("p(G, N) :- N = count{X [G]; q(X)}.")

    def test_negation_inside_aggregate_rejected(self):
        self.unsafe("p(N) :- N = count{X; q(X), not r(X)}.")
