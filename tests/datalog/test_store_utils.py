"""Tests for FactStore utilities and EvaluationResult accessors."""

import pytest

from repro.datalog import Atom, Const, FactStore, Var, evaluate, parse_atom, parse_program


def store_of(*facts):
    store = FactStore()
    for pred, *args in facts:
        store.add(Atom(pred, tuple(Const(a) for a in args)))
    return store


class TestFactStoreUtilities:
    def test_merge(self):
        left = store_of(("p", 1), ("p", 2))
        right = store_of(("p", 2), ("q", 3))
        left.merge(right)
        assert len(left) == 3
        assert left.contains(Atom("q", (Const(3),)))

    def test_difference_count(self):
        left = store_of(("p", 1), ("p", 2), ("q", 3))
        right = store_of(("p", 2))
        assert left.difference_count(right) == 2
        assert right.difference_count(left) == 0

    def test_same_facts_ignores_empty_relations(self):
        left = store_of(("p", 1))
        right = store_of(("p", 1))
        # touch an empty relation on one side only
        left.rows(("q", 1))
        assert left.same_facts(right)

    def test_count_and_signatures(self):
        store = store_of(("p", 1), ("p", 2), ("q", 1, 2))
        assert store.count("p", 1) == 2
        assert store.count("q", 2) == 1
        assert set(store.signatures()) == {("p", 1), ("q", 2)}

    def test_non_ground_fact_rejected(self):
        store = FactStore()
        with pytest.raises(ValueError):
            store.add(Atom("p", (Var("X"),)))

    def test_candidates_fall_back_to_scan(self):
        store = store_of(("p", 1, "a"), ("p", 2, "b"))
        goal = Atom("p", (Var("X"), Var("Y")))
        assert len(list(store.candidates(goal, {}))) == 2

    def test_sorted_atoms_filtered_by_pred(self):
        store = store_of(("p", 2), ("p", 1), ("q", 1))
        assert [str(a) for a in store.sorted_atoms("p")] == ["p(1)", "p(2)"]


class TestEvaluationResultAccessors:
    def test_is_true_and_is_undefined(self):
        program = parse_program(
            "move(a, b). move(b, a). win(X) :- move(X, Y), not win(Y)."
        )
        result = evaluate(program)
        assert not result.is_true(parse_atom("win(a)"))
        assert result.is_undefined(parse_atom("win(a)"))
        assert result.is_true(parse_atom("move(a, b)"))
        assert not result.is_undefined(parse_atom("move(a, b)"))

    def test_program_merged_with(self):
        left = parse_program("p(a).")
        right = parse_program("q(b).")
        merged = left.merged_with(right)
        assert len(merged) == 2
        assert len(left) == 1  # original untouched

    def test_program_contains(self):
        program = parse_program("p(a).")
        rule = list(program)[0]
        assert rule in program
