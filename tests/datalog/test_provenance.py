"""Tests for derivation trees (provenance)."""

import pytest

from repro.datalog import evaluate, explain, parse_atom, parse_program
from repro.errors import EvaluationError


class TestBasicExplanations:
    def test_fact_explains_itself(self):
        program = parse_program("p(a).")
        derivation = explain(program, parse_atom("p(a)"))
        assert derivation.is_fact
        assert derivation.children == []

    def test_false_atom_has_no_explanation(self):
        program = parse_program("p(a).")
        assert explain(program, parse_atom("p(b)")) is None
        assert explain(program, parse_atom("q(a)")) is None

    def test_single_rule_step(self):
        program = parse_program("q(a). p(X) :- q(X).")
        derivation = explain(program, parse_atom("p(a)"))
        assert derivation.rule is not None
        assert len(derivation.children) == 1
        assert str(derivation.children[0].atom) == "q(a)"

    def test_recursive_chain(self):
        program = parse_program(
            """
            edge(a, b). edge(b, c). edge(c, d).
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            """
        )
        derivation = explain(program, parse_atom("tc(a, d)"))
        assert derivation is not None
        leaves = {str(leaf.atom) for leaf in derivation.leaves()}
        assert leaves == {"edge(a, b)", "edge(b, c)", "edge(c, d)"}
        assert derivation.depth() == 4

    def test_cyclic_data_still_well_founded_proof(self):
        program = parse_program(
            """
            edge(a, b). edge(b, a).
            tc(X, Y) :- edge(X, Y).
            tc(X, Y) :- edge(X, Z), tc(Z, Y).
            """
        )
        derivation = explain(program, parse_atom("tc(a, a)"))
        assert derivation is not None
        # the proof must not contain tc(a,a) below itself
        def atoms_below(node):
            out = []
            for child in node.children:
                out.append(child.atom)
                out.extend(atoms_below(child))
            return out

        assert parse_atom("tc(a, a)") not in atoms_below(derivation)

    def test_negation_leaf(self):
        program = parse_program(
            """
            node(a). node(b). edge(a, b).
            touched(X) :- edge(X, _).
            isolated(X) :- node(X), not touched(X).
            """
        )
        derivation = explain(program, parse_atom("isolated(b)"))
        notes = {child.note for child in derivation.children}
        assert "absent (closed world)" in notes

    def test_builtin_leaf(self):
        program = parse_program("v(5). big(X) :- v(X), X > 3.")
        derivation = explain(program, parse_atom("big(5)"))
        assert any(child.note == "builtin" for child in derivation.children)

    def test_arithmetic_leaf(self):
        program = parse_program("v(2). d(X, Y) :- v(X), Y is X * 2.")
        derivation = explain(program, parse_atom("d(2, 4)"))
        assert any(child.note == "arithmetic" for child in derivation.children)

    def test_aggregate_leaf(self):
        program = parse_program("p(a). p(b). n(N) :- N = count{X; p(X)}.")
        derivation = explain(program, parse_atom("n(2)"))
        assert any(child.note == "aggregate" for child in derivation.children)

    def test_nonground_atom_rejected(self):
        program = parse_program("p(a).")
        with pytest.raises(EvaluationError):
            explain(program, parse_atom("p(X)"))

    def test_reuses_prior_result(self):
        program = parse_program("q(a). p(X) :- q(X).")
        result = evaluate(program)
        derivation = explain(program, parse_atom("p(a)"), result=result)
        assert derivation is not None

    def test_format_readable(self):
        program = parse_program("q(a). p(X) :- q(X).")
        text = explain(program, parse_atom("p(a)")).format()
        assert "[rule:" in text
        assert "[fact]" in text


class TestDerivedAtAnnotation:
    """explain() + EvaluationMetrics: stratum/round tags on proof nodes."""

    PROGRAM = """
        edge(a, b). edge(b, c). edge(c, d).
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
        unreached(X) :- edge(X, _), not tc(a, X).
    """

    def _traced_result(self):
        from repro import obs

        program = parse_program(self.PROGRAM)
        with obs.capture("provenance"):
            result = evaluate(program)
        return program, result

    def test_untraced_result_leaves_nodes_unannotated(self):
        program = parse_program(self.PROGRAM)
        result = evaluate(program)
        assert result.metrics is None
        derivation = explain(program, parse_atom("tc(a, d)"), result=result)
        assert derivation.derived_at is None
        assert "stratum" not in derivation.format()

    def test_metrics_annotate_every_proof_node(self):
        program, result = self._traced_result()
        derivation = explain(program, parse_atom("tc(a, d)"), result=result)
        assert derivation.derived_at is not None
        stratum, round_index = derivation.derived_at
        assert stratum == 0
        # tc(a,d) needs three chained edges: derived after round 0
        assert round_index >= 1
        # base facts carry round 0
        for leaf in derivation.leaves():
            assert leaf.derived_at == (0, 0)

    def test_later_stratum_is_tagged(self):
        program, result = self._traced_result()
        derivation = explain(program, parse_atom("unreached(a)"), result=result)
        stratum, _round = derivation.derived_at
        assert stratum == 1

    def test_format_includes_stratum_and_round(self):
        program, result = self._traced_result()
        text = explain(program, parse_atom("tc(a, d)"), result=result).format()
        assert "(stratum 0, round" in text

    def test_explicit_metrics_argument(self):
        program, result = self._traced_result()
        derivation = explain(
            program, parse_atom("tc(a, b)"), metrics=result.metrics
        )
        assert derivation.derived_at is not None


class TestFLogicExplanations:
    def test_isa_explained_through_axioms(self):
        from repro.flogic import FLogicEngine

        engine = FLogicEngine()
        engine.tell("a :: b. b :: c. x : a.")
        derivation = engine.explain("x : c")
        assert derivation is not None
        leaves = {str(leaf.atom) for leaf in derivation.leaves()}
        assert "instance(x, a)" in leaves

    def test_false_fl_fact(self):
        from repro.flogic import FLogicEngine

        engine = FLogicEngine()
        engine.tell("x : a.")
        assert engine.explain("x : b") is None

    def test_nonground_rejected(self):
        from repro.flogic import FLogicEngine

        engine = FLogicEngine()
        engine.tell("x : a.")
        with pytest.raises(ValueError):
            engine.explain("X : a")

    def test_conjunction_rejected(self):
        from repro.flogic import FLogicEngine

        engine = FLogicEngine()
        engine.tell("x : a.")
        with pytest.raises(ValueError):
            engine.explain("x : a, x : b")

    def test_mediated_fact_traces_to_source_anchor(self):
        from repro.neuro import build_scenario

        mediator = build_scenario().mediator
        obj = sorted(
            row["X"]
            for row in mediator.ask("X : 'Compartment'")
            if str(row["X"]).startswith("NCMIR")
        )[0]
        derivation = mediator.explain("'%s' : 'Compartment'" % obj)
        assert derivation is not None
        leaf_atoms = {str(leaf.atom) for leaf in derivation.leaves()}
        # bottoms out in the anchor fact and DM subclass facts
        assert any("subclass" in atom for atom in leaf_atoms)
        assert any(obj in atom for atom in leaf_atoms)
