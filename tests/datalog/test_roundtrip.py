"""Property test: program text round-trips through print + parse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Atom,
    Comparison,
    Const,
    Literal,
    Program,
    Rule,
    Struct,
    Var,
    parse_program,
)

# constants whose printed form reparses to the same value
safe_consts = st.one_of(
    st.integers(-1000, 1000),
    st.floats(
        allow_nan=False, allow_infinity=False, min_value=-100, max_value=100
    ).map(lambda f: round(f, 3)),
    st.sampled_from(["a", "b", "neuron", "Purkinje Cell", "it's", 'x "y"']),
).map(Const)

variables = st.sampled_from(["X", "Y", "Z", "Long_Name"]).map(Var)

terms = st.one_of(
    safe_consts,
    variables,
    st.builds(
        lambda f, args: Struct(f, tuple(args)),
        st.sampled_from(["f", "g", "skolem"]),
        st.lists(safe_consts, min_size=1, max_size=3),
    ),
)

atoms = st.builds(
    lambda p, args: Atom(p, tuple(args)),
    st.sampled_from(["p", "q", "edge", "method_inst"]),
    st.lists(terms, min_size=0, max_size=3),
)


@st.composite
def safe_rules(draw):
    """Rules that satisfy the safety checker by construction: the head
    reuses only variables from a positive body atom."""
    body_atom = draw(atoms)
    body_vars = list({v for v in body_atom.variables()})
    head_args = draw(
        st.lists(
            st.one_of(safe_consts, st.sampled_from(body_vars))
            if body_vars
            else safe_consts,
            min_size=0,
            max_size=3,
        )
    )
    head = Atom(draw(st.sampled_from(["h", "out"])), tuple(head_args))
    body = [Literal(body_atom)]
    if body_vars and draw(st.booleans()):
        body.append(Comparison("!=", draw(st.sampled_from(body_vars)), Const(0)))
    return Rule(head, tuple(body))


ground_facts = st.builds(
    lambda p, args: Rule(Atom(p, tuple(args))),
    st.sampled_from(["p", "edge"]),
    st.lists(
        st.one_of(
            safe_consts,
            st.builds(
                lambda f, args: Struct(f, tuple(args)),
                st.sampled_from(["f", "g"]),
                st.lists(safe_consts, min_size=1, max_size=2),
            ),
        ),
        min_size=0,
        max_size=3,
    ),
)


class TestTextRoundtrip:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(ground_facts, min_size=1, max_size=8))
    def test_facts_roundtrip(self, facts):
        program = Program(facts)
        reparsed = parse_program(str(program))
        assert set(reparsed.rules) == set(program.rules)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(safe_rules(), min_size=1, max_size=6))
    def test_rules_roundtrip(self, rules):
        program = Program(rules)
        reparsed = parse_program(str(program))
        assert set(reparsed.rules) == set(program.rules)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(ground_facts, min_size=1, max_size=6))
    def test_double_roundtrip_fixpoint(self, facts):
        once = str(Program(facts))
        twice = str(parse_program(once))
        assert parse_program(twice).rules == parse_program(once).rules
