"""Unit tests for terms, substitution, and unification."""

import pytest

from repro.datalog.terms import (
    Const,
    Struct,
    Var,
    coerce_term,
    fresh_variable_factory,
    match,
    occurs_in,
    struct,
    substitute,
    term_sort_key,
    unify,
    walk,
)


class TestTermBasics:
    def test_const_equality_by_value(self):
        assert Const("a") == Const("a")
        assert Const("a") != Const("b")
        assert Const(1) != Const("1")

    def test_const_is_ground(self):
        assert Const("a").is_ground()
        assert list(Const("a").variables()) == []

    def test_var_equality_by_name(self):
        assert Var("X") == Var("X")
        assert Var("X") != Var("Y")

    def test_var_not_ground(self):
        assert not Var("X").is_ground()
        assert list(Var("X").variables()) == [Var("X")]

    def test_anonymous_variable_detection(self):
        assert Var("_").is_anonymous
        assert Var("_G1").is_anonymous
        assert not Var("X").is_anonymous

    def test_struct_equality_structural(self):
        assert struct("f", Const(1)) == struct("f", Const(1))
        assert struct("f", Const(1)) != struct("g", Const(1))
        assert struct("f", Const(1)) != struct("f", Const(2))
        assert struct("f", Const(1)) != struct("f", Const(1), Const(2))

    def test_struct_groundness(self):
        assert struct("f", Const(1)).is_ground()
        assert not struct("f", Var("X")).is_ground()

    def test_struct_nested_variables(self):
        term = struct("f", struct("g", Var("X")), Var("Y"))
        assert set(term.variables()) == {Var("X"), Var("Y")}

    def test_terms_are_hashable(self):
        seen = {Const("a"), Var("X"), struct("f", Const(1))}
        assert Const("a") in seen
        assert Var("X") in seen
        assert struct("f", Const(1)) in seen

    def test_const_str_quotes_non_atoms(self):
        assert str(Const("abc")) == "abc"
        assert str(Const("Purkinje Cell")) == "'Purkinje Cell'"
        assert str(Const(42)) == "42"

    def test_coerce_term_passthrough_and_wrap(self):
        assert coerce_term(Var("X")) == Var("X")
        assert coerce_term("a") == Const("a")
        assert coerce_term(3.5) == Const(3.5)


class TestSubstitution:
    def test_walk_follows_chains(self):
        subst = {Var("X"): Var("Y"), Var("Y"): Const(1)}
        assert walk(Var("X"), subst) == Const(1)

    def test_walk_stops_at_unbound(self):
        assert walk(Var("X"), {}) == Var("X")

    def test_substitute_into_struct(self):
        subst = {Var("X"): Const("a")}
        term = struct("f", Var("X"), struct("g", Var("X")))
        assert substitute(term, subst) == struct("f", Const("a"), struct("g", Const("a")))

    def test_substitute_leaves_unbound(self):
        term = struct("f", Var("X"), Var("Y"))
        out = substitute(term, {Var("X"): Const(1)})
        assert out == struct("f", Const(1), Var("Y"))


class TestUnification:
    def test_unify_const_const(self):
        assert unify(Const(1), Const(1)) == {}
        assert unify(Const(1), Const(2)) is None

    def test_unify_var_binds(self):
        subst = unify(Var("X"), Const("a"))
        assert subst == {Var("X"): Const("a")}

    def test_unify_symmetric(self):
        assert unify(Const("a"), Var("X")) == {Var("X"): Const("a")}

    def test_unify_two_vars(self):
        subst = unify(Var("X"), Var("Y"))
        assert subst in ({Var("X"): Var("Y")}, {Var("Y"): Var("X")})

    def test_unify_structs(self):
        subst = unify(struct("f", Var("X"), Const(2)), struct("f", Const(1), Var("Y")))
        assert substitute(Var("X"), subst) == Const(1)
        assert substitute(Var("Y"), subst) == Const(2)

    def test_unify_struct_functor_mismatch(self):
        assert unify(struct("f", Var("X")), struct("g", Const(1))) is None

    def test_unify_struct_arity_mismatch(self):
        assert unify(struct("f", Var("X")), struct("f", Const(1), Const(2))) is None

    def test_unify_respects_existing_bindings(self):
        subst = {Var("X"): Const(1)}
        assert unify(Var("X"), Const(2), subst) is None
        assert unify(Var("X"), Const(1), subst) == subst

    def test_occurs_check_blocks_cyclic_binding(self):
        assert unify(Var("X"), struct("f", Var("X"))) is None

    def test_occurs_check_can_be_disabled(self):
        assert unify(Var("X"), struct("f", Var("X")), occurs_check=False) is not None

    def test_input_subst_not_mutated(self):
        original = {Var("Z"): Const(0)}
        result = unify(Var("X"), Const(1), original)
        assert original == {Var("Z"): Const(0)}
        assert result[Var("X")] == Const(1)

    def test_occurs_in_transitively(self):
        subst = {Var("Y"): struct("f", Var("X"))}
        assert occurs_in(Var("X"), Var("Y"), subst)


class TestMatch:
    def test_match_binds_pattern_vars(self):
        subst = match(struct("f", Var("X")), struct("f", Const(1)))
        assert subst == {Var("X"): Const(1)}

    def test_match_ground_mismatch(self):
        assert match(Const(1), Const(2)) is None

    def test_match_consistent_repeated_vars(self):
        pattern = struct("f", Var("X"), Var("X"))
        assert match(pattern, struct("f", Const(1), Const(1))) is not None
        assert match(pattern, struct("f", Const(1), Const(2))) is None


class TestOrderingAndFactories:
    def test_term_sort_key_total_over_mixed_types(self):
        terms = [Const(2), Const("a"), Const(1.5), struct("f", Const(1)), Const((1, 2))]
        ordered = sorted(terms, key=term_sort_key)
        assert len(ordered) == len(terms)

    def test_fresh_variables_are_distinct(self):
        fresh = fresh_variable_factory()
        names = {fresh().name for _ in range(100)}
        assert len(names) == 100

    def test_fresh_variables_are_anonymous(self):
        fresh = fresh_variable_factory()
        assert fresh().is_anonymous
