"""Tests for the magic-set transformation and the naive-strategy ablation."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import (
    Const,
    Program,
    evaluate,
    fact,
    magic_query,
    magic_transform,
    parse_atom,
    parse_program,
    query,
)
from repro.errors import EvaluationError

TC_RULES = "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y)."


def chain(n):
    program = Program()
    for i in range(n):
        program.add(fact("edge", Const("a%d" % i), Const("a%d" % (i + 1))))
    program.extend(parse_program(TC_RULES))
    return program


class TestMagicTransform:
    def test_goal_with_bound_first_arg(self):
        program = chain(5)
        rewritten, goal = magic_transform(program, parse_atom("tc(a0, X)"))
        assert goal.pred == "tc__bf"
        preds = {rule.head.pred for rule in rewritten.proper_rules()}
        assert "tc__bf" in preds
        assert "_magic_tc__bf" in preds

    def test_seed_fact_emitted(self):
        rewritten, _goal = magic_transform(chain(3), parse_atom("tc(a0, X)"))
        facts = {str(rule) for rule in rewritten.facts()}
        assert "'_magic_tc__bf'(a0)." in facts or "_magic_tc__bf(a0)." in facts

    def test_free_goal_passthrough(self):
        program = chain(3)
        rewritten, goal = magic_transform(program, parse_atom("tc(X, Y)"))
        assert rewritten is program
        assert goal.pred == "tc"

    def test_edb_goal_passthrough(self):
        program = chain(3)
        rewritten, goal = magic_transform(program, parse_atom("edge(a0, X)"))
        assert goal.pred == "edge"

    def test_relevance_pruning(self):
        # only the suffix of the chain is derived
        program = chain(50)
        rewritten, goal = magic_transform(program, parse_atom("tc(a45, X)"))
        result = evaluate(rewritten)
        derived = result.store.rows(("tc__bf", 2))
        # only pairs within the relevant 5-node suffix (15 = C(6,2)),
        # vs. 1275 pairs for the full closure
        assert 0 < len(derived) <= 15


class TestMagicAnswers:
    def test_bf_goal(self):
        assert magic_query(chain(20), parse_atom("tc(a5, X)")) == query(
            chain(20), parse_atom("tc(a5, X)")
        )

    def test_fb_goal(self):
        assert magic_query(chain(20), parse_atom("tc(X, a5)")) == query(
            chain(20), parse_atom("tc(X, a5)")
        )

    def test_bb_goal(self):
        assert magic_query(chain(20), parse_atom("tc(a3, a9)")) == [{}]
        assert magic_query(chain(20), parse_atom("tc(a9, a3)")) == []

    def test_left_recursive_variant(self):
        program = Program()
        for i in range(15):
            program.add(fact("edge", Const(i), Const(i + 1)))
        program.extend(
            parse_program(
                "tc(X, Y) :- edge(X, Y). tc(X, Y) :- tc(X, Z), edge(Z, Y)."
            )
        )
        goal = parse_atom("tc(3, X)")
        assert magic_query(program, goal) == query(program, goal)

    def test_nonlinear_variant(self):
        program = Program()
        for i in range(12):
            program.add(fact("edge", Const(i), Const(i + 1)))
        program.extend(
            parse_program(
                "tc(X, Y) :- edge(X, Y). tc(X, Y) :- tc(X, Z), tc(Z, Y)."
            )
        )
        goal = parse_atom("tc(2, X)")
        assert magic_query(program, goal) == query(program, goal)

    def test_same_generation(self):
        program = Program()
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "e"), ("d", "f")]
        for parent, child in edges:
            program.add(fact("par", Const(parent), Const(child)))
        program.extend(
            parse_program(
                """
                sg(X, X) :- par(_, X).
                sg(X, X) :- par(X, _).
                sg(X, Y) :- par(XP, X), sg(XP, YP), par(YP, Y).
                """
            )
        )
        goal = parse_atom("sg(b, Y)")
        assert magic_query(program, goal) == query(program, goal)

    def test_through_comparisons(self):
        program = parse_program(
            """
            v(1). v(2). v(3). v(4).
            big(X) :- v(X), X > 2.
            double(X, Y) :- big(X), Y is X * 2.
            """
        )
        goal = parse_atom("double(3, Y)")
        assert magic_query(program, goal) == query(program, goal)

    def test_with_negation_unrestricted(self):
        program = parse_program(
            """
            node(a). node(b). node(c). edge(a, b).
            touched(X) :- edge(X, _).
            touched(Y) :- edge(_, Y).
            isolated(X) :- node(X), not touched(X).
            """
        )
        goal = parse_atom("isolated(c)")
        assert magic_query(program, goal) == query(program, goal) == [{}]

    def test_with_aggregate_unrestricted(self):
        program = parse_program(
            """
            r(n1, a1). r(n1, a2). r(n2, a3).
            cnt(B, N) :- r(B, _), N = count{A [B]; r(B, A)}.
            wrap(B, N) :- cnt(B, N).
            """
        )
        goal = parse_atom("wrap(n1, N)")
        assert magic_query(program, goal) == query(program, goal)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, 6), st.integers(0, 6)),
            min_size=0,
            max_size=18,
        ),
        st.integers(0, 6),
    )
    def test_equivalence_property(self, edges, start):
        program = Program()
        for a, b in edges:
            program.add(fact("edge", Const(a), Const(b)))
        program.extend(parse_program(TC_RULES))
        goal = parse_atom("tc(%d, X)" % start)
        assert magic_query(program, goal) == query(program, goal)


class TestNaiveStrategy:
    def test_same_model_as_seminaive(self):
        program = chain(30)
        semi = evaluate(program)
        naive = evaluate(program, strategy="naive")
        assert semi.store.same_facts(naive.store)

    def test_naive_with_negation_strata(self):
        program = parse_program(
            """
            node(a). node(b). edge(a, b).
            touched(X) :- edge(X, _).
            isolated(X) :- node(X), not touched(X).
            """
        )
        semi = evaluate(program)
        naive = evaluate(program, strategy="naive")
        assert semi.store.same_facts(naive.store)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(EvaluationError):
            evaluate(chain(2), strategy="bogus")
