"""Catalog integrity: codes are stable API, so every code the library
emits must be declared, with a valid severity and a title."""

import pathlib
import re

from repro import errors
from repro.analysis import CATALOG, diagnostic, severity_for, title_for

SRC = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"


def test_every_code_has_valid_severity_and_title():
    for code, (severity, title) in CATALOG.items():
        assert re.fullmatch(r"MBM\d{3}", code)
        assert severity in errors.SEVERITIES
        assert title


def test_every_code_mentioned_in_source_is_declared():
    mentioned = set()
    for path in SRC.rglob("*.py"):
        mentioned.update(re.findall(r"MBM\d{3}", path.read_text()))
    undeclared = mentioned - set(CATALOG)
    assert not undeclared, "codes used but not in CATALOG: %s" % sorted(undeclared)


def test_error_classes_carry_declared_codes():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, errors.ReproError):
            assert obj.code in CATALOG, "%s.code=%r not declared" % (name, obj.code)


def test_severity_for_and_title_for():
    assert severity_for("MBM001") == errors.SEVERITY_ERROR
    assert severity_for("MBM008") == errors.SEVERITY_INFO
    assert title_for("MBM021") == "isa cycle in the domain map"
    assert severity_for("MBM999") == errors.SEVERITY_ERROR
    assert title_for("MBM999") == ""


def test_diagnostic_constructor_uses_catalog_severity():
    diag = diagnostic("MBM007", "msg")
    assert diag.severity == errors.SEVERITY_WARNING
    overridden = diagnostic("MBM007", "msg", severity=errors.SEVERITY_ERROR)
    assert overridden.severity == errors.SEVERITY_ERROR


def test_runtime_error_family_codes():
    """The exception classes raised at runtime map onto the same stable
    code space the analyzer uses."""
    expected = {
        errors.ParseError: "MBM090",
        errors.SafetyError: "MBM001",
        errors.StratificationError: "MBM006",
        errors.EvaluationError: "MBM091",
        errors.SchemaError: "MBM011",
        errors.UnknownConceptError: "MBM020",
        errors.UnknownRoleError: "MBM025",
        errors.CapabilityError: "MBM040",
        errors.PlanningError: "MBM042",
        errors.RegistrationError: "MBM043",
        errors.ViewError: "MBM030",
    }
    for error_class, code in expected.items():
        assert error_class.code == code, error_class
        diag = error_class("msg").to_diagnostic()
        assert diag.code == code
        assert diag.severity == errors.SEVERITY_ERROR
