"""Golden tests for the rule-program pass: MBM001-MBM009."""

import pytest

from repro.analysis import analyze_program
from repro.analysis.rules import (
    reference_diagnostics,
    safety_diagnostics,
    stratification_diagnostics,
)
from repro.datalog.parser import parse_program


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


class TestSafetyCodes:
    def test_mbm001_head_not_range_restricted(self):
        diags = analyze_program("p(X) :- q(Y).")
        assert "MBM001" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM001"]
        assert "X" in diag.message
        assert diag.severity == "error"
        assert "p(X) :- q(Y)." in str(diag.span)

    def test_mbm002_variable_only_under_negation(self):
        diags = analyze_program("p(X) :- q(X), not r(Y).")
        assert "MBM002" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM002"]
        assert "Y" in diag.message

    def test_mbm003_unbound_comparison(self):
        diags = analyze_program("p(X) :- q(X), Y > 3.")
        codes = codes_of(diags)
        assert "MBM003" in codes

    def test_mbm004_unsafe_aggregate(self):
        # the aggregated variable never occurs in the aggregate body
        diags = analyze_program("p(N) :- N = count{Z; q(X)}.")
        assert "MBM004" in codes_of(diags)

    def test_mbm004_unbound_group_variable(self):
        diags = analyze_program("p(G, N) :- N = count{X [G]; q(X)}.")
        assert "MBM004" in codes_of(diags)

    def test_clean_program_has_no_safety_diagnostics(self):
        program = parse_program("p(X) :- q(X). q(a).")
        assert safety_diagnostics(program) == []


class TestStratificationCodes:
    def test_mbm005_negation_through_recursion_is_warning(self):
        program = parse_program(
            "p(X) :- b(X), not q(X). q(X) :- b(X), not p(X). b(a)."
        )
        diags = stratification_diagnostics(program)
        assert codes_of(diags).count("MBM005") >= 1
        assert all(d.severity == "warning" for d in diags)
        assert "negation through recursion" in diags[0].message

    def test_mbm006_aggregation_through_recursion_is_error(self):
        program = parse_program(
            "base(a, 1). p(X, N) :- base(X, _), N = count{Y; p(Y, _)}."
        )
        diags = stratification_diagnostics(program)
        assert "MBM006" in codes_of(diags)
        assert all(d.severity == "error" for d in diags if d.code == "MBM006")

    def test_stratified_program_is_silent(self):
        program = parse_program("q(a). q(b). p(N) :- N = count{X; q(X)}.")
        assert stratification_diagnostics(program) == []


class TestReferenceCodes:
    def test_mbm007_undefined_predicate(self):
        diags = reference_diagnostics(parse_program("p(X) :- q(X)."))
        undefined = [d for d in diags if d.code == "MBM007"]
        assert len(undefined) == 1
        assert "q/1" in undefined[0].message
        assert undefined[0].severity == "warning"

    def test_mbm007_suppressed_by_known_predicates(self):
        diags = reference_diagnostics(
            parse_program("p(X) :- q(X)."), known_predicates={"q"}
        )
        assert "MBM007" not in codes_of(diags)

    def test_mbm007_suppressed_for_interface_predicates(self):
        diags = reference_diagnostics(parse_program("p(X) :- instance(X, c)."))
        assert "MBM007" not in codes_of(diags)

    def test_mbm008_unused_predicate(self):
        diags = reference_diagnostics(parse_program("p(X) :- q(X). q(a)."))
        assert codes_of(diags) == ["MBM008"]
        assert "p/1" in diags[0].message
        assert diags[0].severity == "info"

    def test_mbm008_suppressed_by_entry_points(self):
        diags = reference_diagnostics(
            parse_program("p(X) :- q(X). q(a)."), entry_points={"p"}
        )
        assert "MBM008" not in codes_of(diags)

    def test_mbm009_multiple_arities(self):
        diags = reference_diagnostics(
            parse_program("p(X) :- p(X, X). p(a, b).")
        )
        assert "MBM009" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM009"]
        assert "1, 2" in diag.message

    def test_aggregate_bodies_count_as_uses(self):
        program = parse_program("q(a). p(N) :- N = count{X; q(X)}.")
        diags = reference_diagnostics(program, entry_points={"p"})
        assert diags == []


class TestAnalyzeProgramInputs:
    def test_accepts_text(self):
        assert analyze_program("p(a).") == []

    def test_accepts_program(self):
        assert analyze_program(parse_program("p(a).")) == []

    def test_accepts_rule_iterable(self):
        assert analyze_program(list(parse_program("p(a)."))) == []
