"""Golden tests for the domain-map pass: MBM020-MBM025."""

from repro.analysis import analyze_domain_map
from repro.domainmap.model import DomainMap


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


def base_map():
    dm = DomainMap("dm")
    dm.add_concepts(["a", "b", "c"])
    dm.add_role("has")
    dm.isa("a", "b")
    dm.ex("b", "has", "c")
    return dm


class TestDanglingReferences:
    def test_clean_map_is_silent(self):
        assert analyze_domain_map(base_map()) == []

    def test_mbm020_edge_to_undeclared_concept(self):
        dm = base_map()
        dm.concepts.discard("c")  # corrupt the map behind the API
        diags = analyze_domain_map(dm)
        assert "MBM020" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM020"]
        assert "'c'" in diag.message

    def test_mbm025_edge_with_undeclared_role(self):
        dm = base_map()
        dm.roles.discard("has")
        diags = analyze_domain_map(dm)
        assert "MBM025" in codes_of(diags)

    def test_mbm020_in_attached_rule_text(self):
        dm = base_map()
        dm.add_rule("isa(ghost, b).")
        diags = analyze_domain_map(dm)
        assert "MBM020" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM020"]
        assert "'ghost'" in diag.message

    def test_mbm025_in_attached_rule_text(self):
        dm = base_map()
        dm.add_rule("role_edge(phantom_role, a, b).")
        diags = analyze_domain_map(dm)
        assert "MBM025" in codes_of(diags)

    def test_rule_variables_are_not_vocabulary(self):
        dm = base_map()
        dm.add_rule("isa(X, b) :- isa(X, a).")
        assert analyze_domain_map(dm) == []


class TestCycles:
    def test_mbm021_isa_cycle(self):
        dm = base_map()
        dm.isa("b", "a")
        diags = analyze_domain_map(dm)
        assert "MBM021" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM021"]
        assert "a" in diag.message and "b" in diag.message
        assert diag.severity == "error"

    def test_mbm021_self_loop(self):
        dm = base_map()
        dm.isa("a", "a")
        diags = analyze_domain_map(dm)
        assert "MBM021" in codes_of(diags)

    def test_mbm023_circular_eqv_definitions(self):
        dm = base_map()
        dm.add_axioms(
            """
            a = b & c
            b = a & c
            """
        )
        diags = analyze_domain_map(dm)
        assert "MBM023" in codes_of(diags)

    def test_acyclic_eqv_definition_is_fine(self):
        dm = base_map()
        dm.add_axioms("a = b & c")
        assert "MBM023" not in codes_of(analyze_domain_map(dm))


class TestIsolationAndAnchors:
    def test_mbm022_isolated_concept(self):
        dm = base_map()
        dm.add_concept("floating")
        diags = analyze_domain_map(dm)
        assert codes_of(diags) == ["MBM022"]
        assert diags[0].severity == "info"
        assert "'floating'" in diags[0].message

    def test_anchor_suppresses_isolation(self):
        dm = base_map()
        dm.add_concept("floating")
        diags = analyze_domain_map(dm, anchors=[("S", "cls", "floating")])
        assert "MBM022" not in codes_of(diags)

    def test_mbm024_anchor_to_missing_concept(self):
        dm = base_map()
        diags = analyze_domain_map(dm, anchors=[("S", "cls", "nowhere")])
        assert "MBM024" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM024"]
        assert "S.cls" in diag.message
        assert "source S" in str(diag.span)

    def test_mbm020_edge_assertion_without_edge(self):
        dm = base_map()
        diags = analyze_domain_map(
            dm, edge_assertions=[("a", "has", "c")]
        )
        assert "MBM020" in codes_of(diags)

    def test_matching_edge_assertion_is_fine(self):
        dm = base_map()
        diags = analyze_domain_map(
            dm, edge_assertions=[("b", "has", "c")]
        )
        assert diags == []

    def test_all_edge_assertions_sentinel_ignored(self):
        assert analyze_domain_map(base_map(), edge_assertions="all") == []
