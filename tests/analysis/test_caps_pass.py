"""Golden tests for the feasibility pass: MBM030-MBM033, MBM041,
MBM010, MBM032."""

import pytest

from repro.analysis import (
    analyze_capabilities,
    analyze_views,
    analyze_wrapper,
    schema_sort_diagnostics,
    template_diagnostics,
)
from repro.core.mediator import Mediator
from repro.core.views import DistributionView, IntegratedView
from repro.domainmap.model import DomainMap
from repro.gcm.model import ConceptualModel
from repro.sources import Column, QueryTemplate, RelStore, Wrapper
from repro.sources.capabilities import BindingPattern, ClassCapability


def codes_of(diagnostics):
    return [d.code for d in diagnostics]


def small_store():
    store = RelStore("s")
    store.create_table(
        "t", [Column("id", "str"), Column("v", "int")], key="id"
    )
    store.table("t").insert({"id": "x", "v": 1})
    return store


def small_mediator(**wrapper_kwargs):
    dm = DomainMap("d")
    dm.add_concepts(["alpha", "beta"])
    dm.add_role("has")
    dm.isa("alpha", "beta")
    wrapper = Wrapper("SRC", small_store())
    wrapper.export_class(
        "thing", "t", "id", {"ident": "id", "v": "v"}, **wrapper_kwargs
    )
    mediator = Mediator(dm=dm, name="m")
    mediator.register(wrapper, eager=False)
    return mediator


class TestCapabilityCodes:
    def test_mbm031_unanswerable_class(self):
        capability = ClassCapability("c", ["a"], key="a", scannable=False)
        diags = analyze_capabilities({"S": {"c": capability}})
        assert codes_of(diags) == ["MBM031"]
        assert "'c'" in diags[0].message and "S" in diags[0].message

    def test_scannable_class_is_answerable(self):
        capability = ClassCapability("c", ["a"], key="a", scannable=True)
        assert analyze_capabilities({"S": {"c": capability}}) == []

    def test_binding_pattern_makes_class_answerable(self):
        capability = ClassCapability("c", ["a"], key="a", scannable=False)
        capability.allow_selection_on({"a"})
        assert analyze_capabilities({"S": {"c": capability}}) == []

    def test_mbm041_pattern_over_foreign_attributes(self):
        capability = ClassCapability("c", ["a", "b"], key="a")
        capability.binding_patterns.append(BindingPattern(["a", "zz"], "bb"))
        diags = analyze_capabilities({"S": {"c": capability}})
        assert "MBM041" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM041"]
        assert "'zz'" in diag.message

    def test_mbm032_template_without_implementation(self):
        capability = ClassCapability("c", ["a"], key="a")
        capability.add_template(QueryTemplate("ghost", ["p"]))
        diags = template_diagnostics("S", {"c": capability}, {})
        assert codes_of(diags) == ["MBM032"]
        assert "'ghost'" in diags[0].message

    def test_registered_template_is_fine(self):
        capability = ClassCapability("c", ["a"], key="a")
        capability.add_template(QueryTemplate("real", ["p"]))
        diags = template_diagnostics("S", {"c": capability}, {("c", "real"): 1})
        assert diags == []


class TestViewCodes:
    def test_mbm030_dead_integrated_view(self):
        mediator = small_mediator()
        mediator.add_view(
            IntegratedView("dead", "X : out :- X : nonexistent.")
        )
        diags = analyze_views(mediator)
        assert "MBM030" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM030"]
        assert "'nonexistent'" in diag.message

    def test_view_over_exported_class_is_live(self):
        mediator = small_mediator()
        mediator.add_view(IntegratedView("live", "X : out :- X : thing."))
        # 'thing' is exported without an anchor, so the only finding is
        # the medcache MBM034 anchorless-view warning — no dead view
        assert codes_of(analyze_views(mediator)) == ["MBM034"]

    def test_view_over_dm_concept_is_live(self):
        mediator = small_mediator()
        mediator.add_view(IntegratedView("live", "X : out :- X : alpha."))
        assert analyze_views(mediator) == []

    def test_view_over_own_head_is_live(self):
        mediator = small_mediator()
        mediator.add_view(
            IntegratedView(
                "chain", "X : mid :- X : thing. X : out :- X : mid."
            )
        )
        assert codes_of(analyze_views(mediator)) == ["MBM034"]

    def test_mbm032_dangling_depends_on(self):
        mediator = small_mediator()
        mediator.add_view(
            IntegratedView(
                "v", "X : out :- X : thing.", depends_on=("missing_thing",)
            )
        )
        diags = analyze_views(mediator)
        assert "MBM032" in codes_of(diags)

    def test_mbm033_distribution_view_unexported_class(self):
        mediator = small_mediator()
        mediator.add_view(
            DistributionView("dist", "ghost_class", "ident", "v", "has")
        )
        diags = analyze_views(mediator)
        assert "MBM033" in codes_of(diags)

    def test_mbm033_distribution_view_missing_attribute(self):
        mediator = small_mediator()
        mediator.add_view(
            DistributionView("dist", "thing", "ident", "weight", "has")
        )
        diags = analyze_views(mediator)
        assert "MBM033" in codes_of(diags)
        (diag,) = [d for d in diags if d.code == "MBM033"]
        assert "'weight'" in diag.message

    def test_mbm025_distribution_view_unknown_role(self):
        mediator = small_mediator()
        mediator.add_view(
            DistributionView("dist", "thing", "ident", "v", "phantom")
        )
        diags = analyze_views(mediator)
        assert "MBM025" in codes_of(diags)

    def test_clean_distribution_view(self):
        mediator = small_mediator()
        mediator.add_view(
            DistributionView("dist", "thing", "ident", "v", "has")
        )
        assert analyze_views(mediator) == []


class TestSchemaSorts:
    def test_mbm010_unknown_result_sort(self):
        cm = ConceptualModel("cm")
        cm.add_class("c", methods={"m": "strnig"})  # typo'd sort
        diags = schema_sort_diagnostics(cm)
        assert codes_of(diags) == ["MBM010"]
        assert "'strnig'" in diags[0].message

    def test_builtin_sorts_accepted(self):
        cm = ConceptualModel("cm")
        cm.add_class("c", methods={"m": "string", "n": "integer"})
        assert schema_sort_diagnostics(cm) == []

    def test_class_valued_method_accepted(self):
        cm = ConceptualModel("cm")
        cm.add_class("other")
        cm.add_class("c", methods={"m": "other"})
        assert schema_sort_diagnostics(cm) == []

    def test_dm_concept_valued_method_accepted(self):
        dm = DomainMap("d")
        dm.add_concept("alpha")
        cm = ConceptualModel("cm")
        cm.add_class("c", methods={"m": "alpha"})
        assert schema_sort_diagnostics(cm, dm=dm) == []


class TestAnalyzeWrapper:
    def test_clean_wrapper(self):
        wrapper = Wrapper("SRC", small_store())
        wrapper.export_class("thing", "t", "id", {"ident": "id", "v": "v"})
        report = analyze_wrapper(wrapper)
        assert not report.has_errors

    def test_unanswerable_wrapper_class(self):
        wrapper = Wrapper("SRC", small_store())
        wrapper.export_class(
            "thing", "t", "id", {"ident": "id"}, scannable=False
        )
        wrapper.capabilities()["thing"].binding_patterns.clear()
        report = analyze_wrapper(wrapper)
        assert "MBM031" in report.codes()
