"""Shared deployment builders for the medlint test suite."""

import pytest

from repro.core.mediator import Mediator
from repro.core.views import IntegratedView
from repro.domainmap.model import DomainMap
from repro.sources import Column, RelStore, Wrapper


def build_broken_deployment():
    """A deployment seeded with one defect per analyzer pass:

    * an unsafe view rule (head variable unbound)        -> MBM001
    * an isa cycle in the domain map                     -> MBM021
    * a class capability no query can ever be answered   -> MBM031
    * a view over a class nothing supplies               -> MBM030
    """
    dm = DomainMap("broken")
    dm.add_concepts(["alpha", "beta", "gamma", "lonely"])
    dm.add_role("has")
    dm.isa("alpha", "beta")
    dm.isa("beta", "alpha")

    store = RelStore("s")
    store.create_table("t", [Column("id", "str"), Column("v", "int")], key="id")
    store.table("t").insert({"id": "x", "v": 1})

    wrapper = Wrapper("SRC", store)
    wrapper.export_class(
        "thing", "t", "id", {"ident": "id", "v": "v"}, scannable=False
    )
    wrapper.capabilities()["thing"].binding_patterns.clear()

    mediator = Mediator(dm=dm, name="broken_med")
    mediator.register(wrapper, eager=False)
    mediator.add_view(IntegratedView("bad_view", "X : ghost_class[v -> Y]."))
    mediator.add_view(
        IntegratedView("dead", "X : dead_out :- X : nonexistent_class.")
    )
    return mediator


@pytest.fixture
def broken_mediator():
    return build_broken_deployment()


@pytest.fixture(scope="session")
def kind_mediator():
    from repro.neuro import build_scenario

    return build_scenario(include_anatom_source=True).mediator
