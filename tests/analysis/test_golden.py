"""Golden-file test: the text rendering of the seeded broken
deployment is stable, byte for byte.

Regenerate after an intentional message change with::

    PYTHONPATH=src:. python -c "
    from tests.analysis.conftest import build_broken_deployment
    from repro.analysis import analyze
    open('tests/analysis/golden/broken_deployment.txt', 'w').write(
        analyze(build_broken_deployment()).format_text() + '\\n')"
"""

import pathlib

from repro.analysis import analyze

from .conftest import build_broken_deployment

GOLDEN = pathlib.Path(__file__).parent / "golden" / "broken_deployment.txt"


def test_broken_deployment_rendering_matches_golden_file():
    report = analyze(build_broken_deployment())
    assert report.format_text() + "\n" == GOLDEN.read_text()


def test_rendering_is_deterministic():
    first = analyze(build_broken_deployment()).format_text()
    second = analyze(build_broken_deployment()).format_text()
    assert first == second
