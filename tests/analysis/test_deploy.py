"""Whole-deployment tests: analyze() dispatch, the self-check that the
shipped scenario lints clean, the seeded-defect acceptance test, strict
mode, and the CLI."""

import json

import pytest

import repro.flogic.engine as flogic_engine
from repro import __main__ as cli
from repro.analysis import Report, analyze, analyze_mediator, lint_path
from repro.core.mediator import Mediator
from repro.core.views import IntegratedView
from repro.datalog.parser import parse_program
from repro.domainmap.model import DomainMap
from repro.errors import RegistrationError, ViewError
from repro.sources import AnchorSpec, Column, RelStore, Wrapper

from .conftest import build_broken_deployment


@pytest.fixture
def no_evaluation(monkeypatch):
    """Fail the test if anything evaluates during analysis."""

    def boom(self, *args, **kwargs):
        raise AssertionError("evaluate() was called during static analysis")

    monkeypatch.setattr(flogic_engine.FLogicEngine, "evaluate", boom)


class TestDispatch:
    def test_mediator(self, broken_mediator):
        report = analyze(broken_mediator)
        assert isinstance(report, Report)
        assert report.subject == "mediator broken_med"

    def test_domain_map(self):
        dm = DomainMap("d")
        dm.add_concept("a")
        dm.isa("a", "a")
        report = analyze(dm)
        assert "MBM021" in report.codes()

    def test_wrapper(self):
        store = RelStore("s")
        store.create_table("t", [Column("id", "str")], key="id")
        wrapper = Wrapper("W", store)
        wrapper.export_class("c", "t", "id", {"ident": "id"})
        report = analyze(wrapper)
        assert not report.has_errors

    def test_rule_text(self):
        report = analyze("p(X) :- q(Y).")
        assert "MBM001" in report.codes()

    def test_program_and_rule_list(self):
        program = parse_program("p(a).")
        assert analyze(program).codes() == []
        assert analyze(list(program)).codes() == []

    def test_scenario_holder(self, kind_mediator):
        class Holder:
            mediator = kind_mediator

        assert analyze(Holder()).subject == "mediator KIND"

    def test_unknown_target_raises(self):
        with pytest.raises(TypeError):
            analyze(42)


class TestSelfCheck:
    """The shipped deployments must lint clean."""

    def test_kind_scenario_zero_errors(self, kind_mediator, no_evaluation):
        report = analyze_mediator(kind_mediator)
        assert report.diagnostics == []

    def test_mediator_lint_method(self, kind_mediator):
        report = kind_mediator.lint()
        assert not report.has_errors

    @pytest.mark.parametrize(
        "example",
        [
            "examples/quickstart.py",
            "examples/domain_map_reasoning.py",
            "examples/lazy_and_integrity.py",
            "examples/cm_plugins.py",
            "examples/one_world_shopping.py",
            "examples/neuroscience_mediation.py",
        ],
    )
    def test_examples_lint_clean(self, example):
        report = lint_path(example)
        assert [str(d) for d in report.errors] == []


class TestAcceptance:
    """ISSUE acceptance: a deployment seeded with a known-unsafe rule,
    an isa-cycle domain map, and an unanswerable view reports all three
    with distinct codes and a non-zero exit status — without invoking
    evaluate()."""

    def test_three_distinct_codes_without_evaluation(self, no_evaluation):
        mediator = build_broken_deployment()
        report = analyze(mediator)
        codes = set(report.codes())
        assert "MBM001" in codes  # unsafe rule
        assert "MBM021" in codes  # isa cycle
        assert "MBM031" in codes  # unanswerable capability
        assert "MBM030" in codes  # dead view
        assert report.has_errors

    def test_cli_exit_status(self, tmp_path, capsys):
        script = tmp_path / "broken.py"
        script.write_text(
            "from tests.analysis.conftest import build_broken_deployment\n"
            "build_broken_deployment()\n"
        )
        assert cli.main(["lint", str(script)]) == 1
        out = capsys.readouterr().out
        assert "MBM001" in out and "MBM021" in out and "MBM031" in out


class TestStrictMode:
    def test_strict_rejects_unsafe_view_and_keeps_state(self):
        dm = DomainMap("d")
        dm.add_concept("alpha")
        mediator = Mediator(dm=dm, name="m", strict=True)
        with pytest.raises(ViewError) as excinfo:
            mediator.add_view(IntegratedView("bad", "X : ghost[v -> Y]."))
        assert any(d.code == "MBM001" for d in excinfo.value.diagnostics)
        assert mediator.view_names() == []

    def test_strict_accepts_clean_view(self):
        dm = DomainMap("d")
        dm.add_concept("alpha")
        mediator = Mediator(dm=dm, name="m", strict=True)
        mediator.add_view(IntegratedView("ok", "X : good :- X : alpha."))
        assert mediator.view_names() == ["ok"]

    def test_strict_rejects_dangling_anchor_and_keeps_state(self):
        dm = DomainMap("d")
        dm.add_concept("alpha")
        mediator = Mediator(dm=dm, name="m", strict=True)
        store = RelStore("s")
        store.create_table("t", [Column("id", "str")], key="id")
        wrapper = Wrapper("SRC", store)
        wrapper.export_class(
            "thing",
            "t",
            "id",
            {"ident": "id"},
            anchor=AnchorSpec(concept="missing_concept"),
        )
        with pytest.raises(RegistrationError) as excinfo:
            mediator.register(wrapper)
        assert any(d.code == "MBM024" for d in excinfo.value.diagnostics)
        assert mediator.source_names() == []
        assert sorted(mediator.dm.concepts) == ["alpha"]

    def test_strict_accepts_refinement_that_adds_the_concept(self):
        dm = DomainMap("d")
        dm.add_concept("alpha")
        mediator = Mediator(dm=dm, name="m", strict=True)
        store = RelStore("s")
        store.create_table("t", [Column("id", "str")], key="id")
        store.table("t").insert({"id": "x"})
        wrapper = Wrapper("SRC", store)
        wrapper.export_class(
            "thing",
            "t",
            "id",
            {"ident": "id"},
            anchor=AnchorSpec(concept="newcomer"),
        )
        mediator.register(wrapper, dm_refinement="newcomer < alpha")
        assert mediator.source_names() == ["SRC"]
        assert "newcomer" in mediator.dm.concepts

    def test_non_strict_accepts_everything(self):
        mediator = build_broken_deployment()
        assert mediator.strict is False
        assert mediator.view_names() == ["bad_view", "dead"]


class TestCLI:
    def test_lint_default_target_is_clean(self, capsys):
        assert cli.main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_json_output(self, capsys):
        assert cli.main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["subject"] == "mediator KIND"
        assert payload[0]["summary"]["errors"] == 0

    def test_lint_json_diagnostics_shape(self, tmp_path, capsys):
        script = tmp_path / "broken.py"
        script.write_text(
            "from tests.analysis.conftest import build_broken_deployment\n"
            "build_broken_deployment()\n"
        )
        assert cli.main(["lint", "--json", str(script)]) == 1
        payload = json.loads(capsys.readouterr().out)
        diag = payload[0]["diagnostics"][0]
        assert set(diag) == {"code", "severity", "message", "span"}

    def test_no_info_hides_info_diagnostics(self, tmp_path, capsys):
        script = tmp_path / "broken.py"
        script.write_text(
            "from tests.analysis.conftest import build_broken_deployment\n"
            "build_broken_deployment()\n"
        )
        cli.main(["lint", str(script)])
        with_info = capsys.readouterr().out
        cli.main(["lint", "--no-info", str(script)])
        without_info = capsys.readouterr().out
        assert "MBM022" in with_info
        assert "MBM022" not in without_info

    def test_explain_appends_catalog_titles(self, tmp_path, capsys):
        script = tmp_path / "broken.py"
        script.write_text(
            "from tests.analysis.conftest import build_broken_deployment\n"
            "build_broken_deployment()\n"
        )
        cli.main(["lint", "--explain", str(script)])
        out = capsys.readouterr().out
        assert "= isa cycle in the domain map" in out

    def test_script_without_deployment_warns(self, tmp_path, capsys):
        script = tmp_path / "empty.py"
        script.write_text("x = 1\n")
        assert cli.main(["lint", str(script)]) == 0
        assert "MBM000" in capsys.readouterr().out

    def test_missing_target_is_a_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.py"
        assert cli.main(["lint", str(missing)]) == 1
        out = capsys.readouterr().out
        assert "MBM000" in out and "FileNotFoundError" in out

    def test_crashing_script_is_a_clean_error(self, tmp_path, capsys):
        script = tmp_path / "crash.py"
        script.write_text("raise RuntimeError('boom during setup')\n")
        assert cli.main(["lint", str(script)]) == 1
        out = capsys.readouterr().out
        assert "MBM000" in out and "boom during setup" in out

    def test_parser_has_demo_and_lint(self):
        parser = cli.build_parser()
        args = parser.parse_args(["lint", "--json", "a.py"])
        assert args.targets == ["a.py"] and args.json
        args = parser.parse_args(["demo"])
        assert args.func is cli.demo
