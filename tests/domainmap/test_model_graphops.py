"""Tests for the DomainMap model and Section 4 graph operations."""

import pytest

from repro.datalog import evaluate
from repro.errors import NoUpperBoundError, UnknownConceptError
from repro.domainmap import (
    DomainMap,
    closure_program,
    deductive_closure,
    descendants,
    downward_closure,
    edge_census,
    has_a_star,
    isa_closure,
    least_upper_bounds,
    lub,
    parse_axiom,
    part_tree,
    region_of_correspondence,
    to_dot,
    to_text,
    transitive_closure,
    upper_bounds,
)


@pytest.fixture
def fig1():
    """The Figure 1 domain map built from Example 1's DL statements."""
    dm = DomainMap("anatom")
    dm.add_axioms(
        """
        Neuron < exists has.Compartment
        Axon < Compartment
        Dendrite < Compartment
        Soma < Compartment
        Spiny_Neuron = Neuron & exists has.Spine
        Purkinje_Cell < Spiny_Neuron
        Pyramidal_Cell < Spiny_Neuron
        Dendrite < exists has.Branch
        Shaft < Branch & exists has.Spine
        Spine < exists contains.Ion_Binding_Protein
        Spine < Ion_Regulating_Component
        Ion_Activity < exists subprocess_of.Neurotransmission
        Ion_Binding_Protein < Protein & exists controls.Ion_Activity
        Ion_Regulating_Component = exists regulates.Ion_Activity
        """
    )
    return dm


class TestDomainMapModel:
    def test_auto_declared_vocabulary(self, fig1):
        assert "Purkinje_Cell" in fig1.concepts
        assert "has" in fig1.roles
        assert "contains" in fig1.roles

    def test_isa_pairs_from_decomposition(self, fig1):
        pairs = fig1.isa_pairs()
        assert ("Axon", "Compartment") in pairs
        assert ("Spiny_Neuron", "Neuron") in pairs  # from the Eqv definition
        assert ("Shaft", "Branch") in pairs  # from the Conj

    def test_role_triples(self, fig1):
        triples = fig1.role_triples()
        assert ("Neuron", "has", "Compartment") in triples
        assert ("Shaft", "has", "Spine") in triples
        assert ("Spine", "contains", "Ion_Binding_Protein") in triples

    def test_eqv_to_named_gives_mutual_isa(self):
        dm = DomainMap("t")
        dm.eqv("controls", "regulates_c")
        assert ("controls", "regulates_c") in dm.isa_pairs()
        assert ("regulates_c", "controls") in dm.isa_pairs()

    def test_convenience_edge_constructors(self):
        dm = DomainMap("t")
        dm.isa("A", "B")
        dm.ex("A", "r", "C")
        dm.all_values("A", "r", "D")
        assert ("A", "B") in dm.isa_pairs()
        assert ("A", "r", "C") in dm.role_triples()
        assert ("A", "r", "D") in dm.all_triples()

    def test_disjunction_renders_or_node(self):
        dm = DomainMap("t")
        dm.add_axiom("M < exists proj.(A | B)")
        kinds = {e.kind for e in dm.edges()}
        or_nodes = {
            e.dst for e in dm.edges() if e.dst.startswith("OR#")
        }
        assert or_nodes  # the ex edge targets a synthetic OR node
        assert "ex" in kinds

    def test_edge_census(self, fig1):
        census = edge_census(fig1)
        assert census["ex"] == 10
        assert census["isa"] == 10
        assert census["eqv"] == 2

    def test_graph_nodes_and_kinds(self, fig1):
        graph = fig1.graph()
        assert graph.nodes["Neuron"]["kind"] == "concept"
        assert graph.number_of_edges() >= 20

    def test_copy_is_independent(self, fig1):
        clone = fig1.copy("clone")
        clone.isa("NewThing", "Neuron")
        assert "NewThing" in clone.concepts
        assert "NewThing" not in fig1.concepts

    def test_require_concept(self, fig1):
        fig1.require_concept("Neuron")
        with pytest.raises(UnknownConceptError):
            fig1.require_concept("Cortex")

    def test_describe_lists_axioms(self, fig1):
        text = fig1.describe()
        assert "14 axioms" in text
        assert "Spiny_Neuron" in text


class TestClosures:
    def test_transitive_closure_basic(self):
        closure = transitive_closure({("a", "b"), ("b", "c")})
        assert closure == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_isa_closure_transitive(self, fig1):
        closure = isa_closure(fig1)
        assert ("Purkinje_Cell", "Neuron") in closure

    def test_isa_closure_reflexive_option(self, fig1):
        assert ("Neuron", "Neuron") in isa_closure(fig1, reflexive=True)
        assert ("Neuron", "Neuron") not in isa_closure(fig1, reflexive=False)

    def test_deductive_closure_down_propagation(self, fig1):
        # Purkinje_Cell inherits `has Spine` from Spiny_Neuron.
        dc = deductive_closure(fig1, "has")
        assert ("Purkinje_Cell", "Spine") in dc

    def test_deductive_closure_up_propagation(self, fig1):
        # Shaft has Spine; Spine isa Ion_Regulating_Component.
        dc = deductive_closure(fig1, "has")
        assert ("Shaft", "Ion_Regulating_Component") in dc

    def test_deductive_closure_includes_base(self, fig1):
        dc = deductive_closure(fig1, "has")
        assert ("Neuron", "Compartment") in dc

    def test_deductive_closure_both_ends(self, fig1):
        # Purkinje (below Spiny) has Spine which isa IRC: needs both ends.
        dc = deductive_closure(fig1, "has")
        assert ("Purkinje_Cell", "Ion_Regulating_Component") in dc

    def test_mode_variants_nest(self, fig1):
        down = deductive_closure(fig1, "has", mode="down")
        paper = deductive_closure(fig1, "has", mode="paper")
        full = deductive_closure(fig1, "has", mode="full")
        assert down <= paper <= full

    def test_down_mode_keeps_targets(self, fig1):
        down = deductive_closure(fig1, "has", mode="down")
        assert ("Purkinje_Cell", "Spine") in down
        assert ("Shaft", "Ion_Regulating_Component") not in down

    def test_has_a_star_not_transitive(self, fig1):
        # Dendrite has Branch, Shaft has Spine, but Dendrite-has-Spine is
        # NOT a direct inferable link (Branch is above Shaft).
        star = has_a_star(fig1, "has")
        assert ("Dendrite", "Branch") in star
        assert ("Dendrite", "Spine") not in star

    def test_datalog_backend_equivalent(self, fig1):
        result = evaluate(closure_program(fig1))
        datalog_star = {
            (a.args[0].value, a.args[1].value)
            for a in result.store.iter_atoms("has_a_star")
        }
        assert datalog_star == has_a_star(fig1, "has")

    def test_datalog_backend_dc_other_roles(self, fig1):
        result = evaluate(closure_program(fig1))
        datalog_dc = {
            (a.args[1].value, a.args[2].value)
            for a in result.store.iter_atoms("dc_role")
            if a.args[0].value == "contains"
        }
        assert datalog_dc == deductive_closure(fig1, "contains")


class TestLub:
    def test_lub_isa_order(self, fig1):
        assert lub(fig1, ["Axon", "Dendrite"]) == "Compartment"

    def test_lub_reflexive_case(self, fig1):
        assert lub(fig1, ["Compartment", "Axon"]) == "Compartment"

    def test_lub_single_concept(self, fig1):
        assert lub(fig1, ["Spine"]) == "Spine"

    def test_lub_containment_order(self, fig1):
        # Spine sits below Shaft below Branch in the containment walk.
        assert lub(fig1, ["Spine", "Branch"], order="has") == "Branch"

    def test_no_upper_bound_raises(self, fig1):
        with pytest.raises(NoUpperBoundError):
            lub(fig1, ["Spine", "Branch"])  # no common isa ancestor

    def test_empty_set_raises(self, fig1):
        with pytest.raises(NoUpperBoundError):
            lub(fig1, [])

    def test_unknown_concept_raises(self, fig1):
        with pytest.raises(UnknownConceptError):
            lub(fig1, ["Spine", "Cortex"])

    def test_multiple_lubs_reported(self):
        dm = DomainMap("diamond")
        dm.isa("x", "p")
        dm.isa("x", "q")
        dm.isa("y", "p")
        dm.isa("y", "q")
        assert least_upper_bounds(dm, ["x", "y"]) == ["p", "q"]
        assert lub(dm, ["x", "y"]) == "p"  # deterministic tie-break

    def test_upper_bounds_include_all_ancestors(self, fig1):
        bounds = upper_bounds(fig1, ["Purkinje_Cell", "Pyramidal_Cell"])
        assert {"Spiny_Neuron", "Neuron"} <= bounds


class TestTraversal:
    def test_part_tree_descends_isa(self, fig1):
        nodes = set(part_tree(fig1, "Dendrite", "has").nodes)
        assert {"Dendrite", "Branch", "Shaft", "Spine"} <= nodes

    def test_part_tree_excludes_unrelated(self, fig1):
        nodes = set(part_tree(fig1, "Dendrite", "has").nodes)
        assert "Axon" not in nodes
        assert "Neurotransmission" not in nodes

    def test_downward_closure_from_neuron(self, fig1):
        closure = downward_closure(fig1, "Neuron", "has")
        assert {"Compartment", "Dendrite", "Branch", "Shaft", "Spine"} <= closure

    def test_part_tree_without_isa_descent(self, fig1):
        nodes = set(part_tree(fig1, "Dendrite", "has", include_isa=False).nodes)
        assert "Shaft" not in nodes  # only reachable via Branch's isa-down

    def test_region_of_correspondence(self, fig1):
        region = region_of_correspondence(fig1, ["Spine", "Branch"], role="has")
        nodes = set(region.nodes)
        assert {"Branch", "Shaft", "Spine"} <= nodes
        assert "Axon" not in nodes

    def test_part_tree_unknown_root(self, fig1):
        with pytest.raises(UnknownConceptError):
            part_tree(fig1, "Cortex", "has")


class TestRendering:
    def test_dot_contains_nodes_and_labels(self, fig1):
        dot = to_dot(fig1)
        assert '"Purkinje_Cell"' in dot
        assert 'label="has"' in dot
        assert dot.startswith("digraph")

    def test_dot_highlights(self, fig1):
        dot = to_dot(fig1, highlight=["Neuron"])
        assert "gray25" in dot

    def test_dot_synthetic_nodes(self):
        dm = DomainMap("t")
        dm.add_axiom("M < exists proj.(A | B)")
        dot = to_dot(dm)
        assert 'label="OR"' in dot

    def test_text_listing_deterministic(self, fig1):
        assert to_text(fig1) == to_text(fig1)
        assert "-[has]->" in to_text(fig1)
