"""Tests for edge execution, registration (Figure 3), and the index."""

import pytest

from repro.datalog import Program, evaluate
from repro.errors import DomainMapError, UnknownConceptError, UnknownRoleError
from repro.domainmap import (
    DomainMap,
    SemanticIndex,
    compile_domain_map,
    definite_projections,
    register_concepts,
)
from repro.gcm.constraints import witnesses_from_store


@pytest.fixture
def small_dm():
    dm = DomainMap("t")
    dm.add_axioms(
        """
        Dendrite < Compartment
        Dendrite < exists has.Branch
        Branch < exists has.Spine
        """
    )
    return dm


def run(rules, facts):
    program = Program(rules)
    for pred, *args in facts:
        program.add_fact(pred, *args)
    return evaluate(program)


class TestEdgeExecution:
    def test_assertion_creates_placeholder(self, small_dm):
        rules = compile_domain_map(
            small_dm, assertions_for=[("Dendrite", "has", "Branch")]
        )
        result = run(
            rules,
            [
                ("instance", "d1", "Dendrite"),
                ("instance", "d2", "Dendrite"),
                ("instance", "b1", "Branch"),
                ("role_fact", "has", "d1", "b1"),
            ],
        )
        asserted = [str(a) for a in result.store.sorted_atoms("role_asserted")]
        assert asserted == ["role_asserted(has, d2, f('Dendrite', has, 'Branch', d2))"]

    def test_placeholder_is_instance_of_target(self, small_dm):
        rules = compile_domain_map(
            small_dm, assertions_for=[("Dendrite", "has", "Branch")]
        )
        result = run(rules, [("instance", "d1", "Dendrite")])
        instances = {str(a) for a in result.store.iter_atoms("instance")}
        assert "instance(f('Dendrite', has, 'Branch', d1), 'Branch')" in instances

    def test_no_placeholder_when_filled(self, small_dm):
        rules = compile_domain_map(
            small_dm, assertions_for=[("Dendrite", "has", "Branch")]
        )
        result = run(
            rules,
            [
                ("instance", "d1", "Dendrite"),
                ("instance", "b1", "Branch"),
                ("role_fact", "has", "d1", "b1"),
            ],
        )
        assert len(result.store.rows(("role_asserted", 3))) == 0

    def test_role_inst_union_view(self, small_dm):
        rules = compile_domain_map(
            small_dm, assertions_for=[("Dendrite", "has", "Branch")]
        )
        result = run(
            rules,
            [
                ("instance", "d1", "Dendrite"),
                ("instance", "d2", "Dendrite"),
                ("instance", "b1", "Branch"),
                ("role_fact", "has", "d1", "b1"),
            ],
        )
        role_inst = result.store.rows(("role_inst", 3))
        assert len(role_inst) == 2  # stated + asserted

    def test_constraint_mode_witnesses(self, small_dm):
        # Run the constraint rules over the materialized base (two-phase
        # style, as repro.gcm.check does).
        base = run(
            compile_domain_map(small_dm),
            [
                ("instance", "d1", "Dendrite"),
                ("instance", "d2", "Dendrite"),
                ("instance", "b1", "Branch"),
                ("role_fact", "has", "d1", "b1"),
            ],
        )
        from repro.domainmap import edge_constraint_rules
        from repro.datalog.ast import Rule

        phase2 = Program()
        for atom in base.store.iter_atoms():
            phase2.add(Rule(atom))
        phase2.extend(edge_constraint_rules("Dendrite", "has", "Branch"))
        result = evaluate(phase2)
        witnesses = witnesses_from_store(result.store)
        assert len(witnesses) == 1
        assert witnesses[0].context == ("Dendrite", "has", "Branch", "d2")

    def test_universal_constraint_mode(self, small_dm):
        small_dm.all_values("Dendrite", "has", "Branch")
        base = run(
            compile_domain_map(small_dm),
            [
                ("instance", "d1", "Dendrite"),
                ("role_fact", "has", "d1", "x9"),
            ],
        )
        from repro.domainmap import all_edge_constraint_rules
        from repro.datalog.ast import Rule

        phase2 = Program()
        for atom in base.store.iter_atoms():
            phase2.add(Rule(atom))
        phase2.extend(all_edge_constraint_rules("Dendrite", "has", "Branch"))
        result = evaluate(phase2)
        witnesses = witnesses_from_store(result.store)
        assert len(witnesses) == 1
        assert witnesses[0].kind == "w_all"

    def test_anchored_objects_propagate_up_isa(self, small_dm):
        rules = compile_domain_map(small_dm)
        from repro.flogic import core_axioms

        program = Program(rules)
        program.extend(core_axioms())
        program.add_fact("instance", "d1", "Dendrite")
        result = evaluate(program)
        instances = {str(a) for a in result.store.iter_atoms("instance")}
        assert "instance(d1, 'Compartment')" in instances

    def test_unknown_edge_rejected(self, small_dm):
        with pytest.raises(DomainMapError):
            compile_domain_map(
                small_dm, assertions_for=[("Spine", "has", "Branch")]
            )

    def test_closure_rules_included(self, small_dm):
        result = run(compile_domain_map(small_dm), [])
        star = {
            (a.args[0].value, a.args[1].value)
            for a in result.store.iter_atoms("has_a_star")
        }
        assert ("Dendrite", "Branch") in star

    def test_dm_rules_text_included(self, small_dm):
        small_dm.add_rule("extra(X) :- concept(X).")
        result = run(compile_domain_map(small_dm), [])
        assert len(result.store.rows(("extra", 1))) == len(small_dm.concepts)


class TestRegistration:
    @pytest.fixture
    def fig3_base(self):
        dm = DomainMap("fig3")
        dm.add_axioms(
            """
            Neuron < exists has.Compartment
            Axon < Compartment
            Dendrite < Compartment
            Soma < Compartment
            Spiny_Neuron < Neuron
            Medium_Spiny_Neuron < Spiny_Neuron
            Medium_Spiny_Neuron < exists proj.(Substantia_nigra_pr | Substantia_nigra_pc | Globus_Pallidus_External | Globus_Pallidus_Internal)
            Medium_Spiny_Neuron < exists exp.(GABA | Substance_P | Dopamine_R)
            GABA < Neurotransmitter
            Neostriatum < exists has.Medium_Spiny_Neuron
            """
        )
        return dm

    FIG3_REGISTRATION = """
        MyDendrite = Dendrite & exists exp.Dopamine_R
        MyNeuron < Medium_Spiny_Neuron & exists proj.Globus_Pallidus_External & all has.MyDendrite
    """

    def test_new_concepts_added(self, fig3_base):
        result = register_concepts(fig3_base, self.FIG3_REGISTRATION)
        assert result.new_concepts == ["MyDendrite", "MyNeuron"]
        assert "MyNeuron" in fig3_base.concepts

    def test_derived_isa_edges(self, fig3_base):
        register_concepts(fig3_base, self.FIG3_REGISTRATION)
        from repro.domainmap import isa_closure

        closure = isa_closure(fig3_base)
        assert ("MyNeuron", "Medium_Spiny_Neuron") in closure
        assert ("MyNeuron", "Neuron") in closure
        assert ("MyDendrite", "Dendrite") in closure

    def test_definite_projection_derived(self, fig3_base):
        # "With the newly registered knowledge, it follows that MyNeuron
        # definitely projects to Globus Palladius External."
        register_concepts(fig3_base, self.FIG3_REGISTRATION)
        assert definite_projections(fig3_base, "MyNeuron", "proj") == [
            "Globus_Pallidus_External"
        ]

    def test_all_edge_recorded(self, fig3_base):
        register_concepts(fig3_base, self.FIG3_REGISTRATION)
        assert ("MyNeuron", "has", "MyDendrite") in fig3_base.all_triples()

    def test_unknown_concept_reference_rejected(self, fig3_base):
        with pytest.raises(UnknownConceptError):
            register_concepts(fig3_base, "Mystery < UnknownBase")

    def test_unknown_role_rejected_by_default(self, fig3_base):
        with pytest.raises(UnknownRoleError):
            register_concepts(fig3_base, "MyThing < exists newrole.Neuron")

    def test_new_roles_allowed_when_opted_in(self, fig3_base):
        result = register_concepts(
            fig3_base, "MyThing < exists newrole.Neuron", allow_new_roles=True
        )
        assert "newrole" in fig3_base.roles
        assert result.new_concepts == ["MyThing"]

    def test_self_referencing_registration_allowed(self, fig3_base):
        # Concepts defined within the same registration may reference
        # each other (MyNeuron references MyDendrite).
        result = register_concepts(fig3_base, self.FIG3_REGISTRATION)
        assert len(result.new_axioms) == 2

    def test_empty_registration_rejected(self, fig3_base):
        with pytest.raises(DomainMapError):
            register_concepts(fig3_base, "")

    def test_result_describe(self, fig3_base):
        result = register_concepts(fig3_base, self.FIG3_REGISTRATION)
        text = result.describe()
        assert "MyNeuron" in text
        assert "derived isa edges" in text


class TestSemanticIndex:
    @pytest.fixture
    def index(self, small_dm):
        small_dm.add_axioms("Purkinje_Dendrite < Dendrite")
        index = SemanticIndex(small_dm)
        index.add_anchor("NCMIR", "protein_amount", "Purkinje_Dendrite")
        index.add_anchor("SYNAPSE", "spine_measure", "Spine")
        index.add_anchor("ANATOM", "region", "Compartment")
        return index

    def test_sources_for_exact_concept(self, index):
        assert index.sources_for("Spine") == ["SYNAPSE"]

    def test_sources_for_ancestor_includes_descendant_anchors(self, index):
        # Data anchored at Purkinje_Dendrite IS Dendrite data.
        assert index.sources_for("Dendrite") == ["NCMIR"]
        assert index.sources_for("Compartment") == ["ANATOM", "NCMIR"]

    def test_sources_for_without_descendants(self, index):
        assert index.sources_for("Dendrite", include_descendants=False) == []

    def test_sources_for_all(self, index):
        index.add_anchor("NCMIR", "protein_amount", "Spine")
        assert index.sources_for_all(["Spine", "Dendrite"]) == ["NCMIR"]

    def test_sources_for_any(self, index):
        assert index.sources_for_any(["Spine", "Dendrite"]) == [
            "NCMIR",
            "SYNAPSE",
        ]

    def test_concepts_of_source(self, index):
        assert index.concepts_of_source("NCMIR") == ["Purkinje_Dendrite"]

    def test_unknown_concept_anchor_rejected(self, index):
        with pytest.raises(UnknownConceptError):
            index.add_anchor("X", "c", "Cortex")

    def test_object_anchors(self, index, small_dm):
        index.add_object_anchor("SYNAPSE", "spine_001", "Spine")
        assert index.objects_at("Spine") == [("SYNAPSE", "spine_001")]

    def test_remove_source(self, index):
        index.remove_source("NCMIR")
        assert index.sources_for("Dendrite") == []
        assert index.sources_for("Spine") == ["SYNAPSE"]

    def test_coverage_report(self, index):
        coverage = index.coverage()
        assert coverage["Spine"] == ["SYNAPSE"]
        assert len(index) == 3
