"""Tests for DL expressions, axioms, FO translation and the DL parser."""

import pytest

from repro.errors import DomainMapError, ParseError
from repro.domainmap import (
    Conj,
    Disj,
    Eqv,
    Exists,
    Forall,
    Named,
    Sub,
    axiom_to_fo,
    parse_axiom,
    parse_axioms,
    parse_concept,
)


class TestExpressions:
    def test_named_equality(self):
        assert Named("Neuron") == Named("Neuron")
        assert Named("Neuron") != Named("Spine")

    def test_conj_flattens(self):
        conj = Conj([Named("A"), Conj([Named("B"), Named("C")])])
        assert len(conj.parts) == 3

    def test_conj_needs_two_parts(self):
        with pytest.raises(DomainMapError):
            Conj([Named("A")])

    def test_disj_flattens(self):
        disj = Disj([Named("A"), Disj([Named("B"), Named("C")])])
        assert len(disj.parts) == 3

    def test_exists_wraps_string_concept(self):
        expr = Exists("has", "Spine")
        assert expr.concept == Named("Spine")

    def test_named_concepts_collects_nested(self):
        expr = Conj([Named("A"), Exists("r", Conj([Named("B"), Named("C")]))])
        assert set(expr.named_concepts()) == {"A", "B", "C"}

    def test_roles_collects_nested(self):
        expr = Exists("r", Forall("s", Named("A")))
        assert set(expr.roles()) == {"r", "s"}

    def test_str_quotes_spaces(self):
        assert str(Named("Purkinje Cell")) == "'Purkinje Cell'"


class TestParser:
    def test_simple_isa(self):
        axiom = parse_axiom("Axon < Compartment")
        assert axiom == Sub(Named("Axon"), Named("Compartment"))

    def test_exists(self):
        axiom = parse_axiom("Neuron < exists has.Compartment")
        assert axiom == Sub(Named("Neuron"), Exists("has", Named("Compartment")))

    def test_forall(self):
        axiom = parse_axiom("MyNeuron < all has.MyDendrite")
        assert axiom == Sub(Named("MyNeuron"), Forall("has", Named("MyDendrite")))

    def test_equivalence_with_conjunction(self):
        axiom = parse_axiom("Spiny_Neuron = Neuron & exists has.Spine")
        assert isinstance(axiom, Eqv)
        assert axiom.rhs == Conj([Named("Neuron"), Exists("has", Named("Spine"))])

    def test_disjunction_parenthesized(self):
        axiom = parse_axiom("M < exists proj.(A | B | C)")
        exists = axiom.rhs
        assert isinstance(exists, Exists)
        assert exists.concept == Disj([Named("A"), Named("B"), Named("C")])

    def test_quoted_names(self):
        axiom = parse_axiom("'Purkinje Cell' < 'Spiny Neuron'")
        assert axiom.lhs == Named("Purkinje Cell")

    def test_quoted_role(self):
        axiom = parse_axiom("A < exists 'is part of'.B")
        assert axiom.rhs.role == "is part of"

    def test_multi_conjunct_with_quantifiers(self):
        axiom = parse_axiom(
            "MyNeuron < Medium_Spiny_Neuron & exists proj.GPE & all has.MyDendrite"
        )
        assert len(axiom.rhs.parts) == 3

    def test_parse_axioms_multiline_with_comments(self):
        axioms = parse_axioms(
            """
            % anatomical knowledge
            Axon < Compartment
            Dendrite < Compartment   % another
            """
        )
        assert len(axioms) == 2

    def test_parse_concept(self):
        expr = parse_concept("Neuron & exists has.Spine")
        assert isinstance(expr, Conj)

    def test_missing_operator_rejected(self):
        with pytest.raises(ParseError):
            parse_axiom("A B")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_axiom("A < B C")

    def test_roundtrip_through_str(self):
        texts = [
            "Axon < Compartment",
            "Spiny_Neuron = Neuron & exists has.Spine",
            "M < exists proj.(A | B)",
            "MyNeuron < all has.MyDendrite",
        ]
        for text in texts:
            axiom = parse_axiom(text)
            assert parse_axiom(str(axiom)) == axiom


class TestFOTranslation:
    def test_fo_of_ex_edge_matches_paper(self):
        # FO(ex): forall x (C(x) -> exists y (D(y) & r(x, y)))
        axiom = parse_axiom("C < exists r.D")
        fo = axiom_to_fo(axiom)
        assert fo == "forall x (C(x) -> exists y1 (r(x, y1) & D(y1)))"

    def test_fo_of_isa(self):
        fo = axiom_to_fo(parse_axiom("Axon < Compartment"))
        assert fo == "forall x (Axon(x) -> Compartment(x))"

    def test_fo_of_forall(self):
        fo = axiom_to_fo(parse_axiom("C < all r.D"))
        assert "forall y1 (r(x, y1) -> D(y1))" in fo

    def test_fo_of_equivalence(self):
        fo = axiom_to_fo(parse_axiom("A = B"))
        assert "<->" in fo

    def test_fo_of_conjunction(self):
        fo = axiom_to_fo(parse_axiom("S = N & exists has.Spine"))
        assert "(N(x))" in fo and "Spine" in fo
