"""Tests for domain-map rendering."""

import pytest

from repro.domainmap import DomainMap, edge_census, to_dot, to_text


@pytest.fixture
def dm():
    out = DomainMap("demo map")
    out.add_axioms(
        """
        'Purkinje Cell' < Neuron
        Neuron < exists has.Compartment
        Spiny = Neuron & exists has.Spine
        M < exists proj.(A | B)
        M < all has.D
        """
    )
    return out


class TestDot:
    def test_valid_header_and_nodes(self, dm):
        dot = to_dot(dm)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"Neuron"' in dot

    def test_names_with_spaces_escaped(self, dm):
        dot = to_dot(dm)
        assert '"Purkinje Cell"' in dot

    def test_edge_labels(self, dm):
        dot = to_dot(dm)
        assert 'label="has"' in dot
        assert 'label="ALL: has"' in dot
        assert 'label="="' in dot

    def test_isa_edges_gray(self, dm):
        assert 'color="gray60"' in to_dot(dm)

    def test_synthetic_nodes_diamond(self, dm):
        dot = to_dot(dm)
        assert "shape=diamond" in dot
        assert 'label="OR"' in dot
        assert 'label="AND"' in dot

    def test_highlight(self, dm):
        dot = to_dot(dm, highlight=["Neuron"])
        assert "fillcolor" in dot

    def test_rankdir_option(self, dm):
        assert "rankdir=LR" in to_dot(dm, rankdir="LR")


class TestTextAndCensus:
    def test_text_header_counts(self, dm):
        text = to_text(dm)
        assert "demo map" in text
        assert "concepts" in text

    def test_text_deterministic(self, dm):
        assert to_text(dm) == to_text(dm)

    def test_census_kinds(self, dm):
        census = edge_census(dm)
        assert census["all"] == 1
        assert census["eqv"] == 1
        assert census["ex"] >= 2
        assert census["isa"] >= 2
