"""Closure edge cases backing medcache's affected-set computation:
lub over disconnected worlds, has_a_star through eqv bridges, and
refinements that add only role links."""

import pytest

from repro.domainmap import DomainMap
from repro.domainmap.graphops import (
    ancestors,
    has_a_star,
    least_upper_bounds,
    lub,
    role_containers,
)
from repro.domainmap.registry import register_concepts
from repro.errors import NoUpperBoundError


def disconnected_dm():
    dm = DomainMap("islands")
    dm.add_axioms(
        """
        Neuron < Cell
        Paper < Document
        """
    )
    return dm


class TestLubEdgeCases:
    def test_no_common_ancestor_raises(self):
        dm = disconnected_dm()
        with pytest.raises(NoUpperBoundError):
            least_upper_bounds(dm, ["Neuron", "Paper"])
        with pytest.raises(NoUpperBoundError):
            lub(dm, ["Cell", "Document"])

    def test_empty_concept_set_raises(self):
        with pytest.raises(NoUpperBoundError):
            least_upper_bounds(disconnected_dm(), [])

    def test_singleton_is_its_own_lub(self):
        assert lub(disconnected_dm(), ["Neuron"]) == "Neuron"

    def test_dag_can_have_multiple_lubs(self):
        dm = DomainMap("diamond")
        dm.add_axioms(
            """
            A < L
            A < R
            B < L
            B < R
            """
        )
        assert least_upper_bounds(dm, ["A", "B"]) == ["L", "R"]
        assert lub(dm, ["A", "B"]) == "L"  # ties break by name


class TestHasAStarThroughEqv:
    def build(self):
        # the containment edge lives on Cerebellum; Kleinhirn only
        # reaches it through the eqv bridge
        dm = DomainMap("bilingual")
        dm.add_role("has")
        dm.add_axioms("Cerebellum < exists has.Purkinje_Cell")
        dm.add_concept("Kleinhirn")
        dm.eqv("Kleinhirn", "Cerebellum")
        return dm

    def test_eqv_aliases_share_role_links(self):
        links = has_a_star(self.build())
        assert ("Cerebellum", "Purkinje_Cell") in links
        assert ("Kleinhirn", "Purkinje_Cell") in links

    def test_role_containers_sees_through_eqv(self):
        containers = role_containers(
            self.build(), "Purkinje_Cell", "has"
        )
        assert "Cerebellum" in containers
        assert "Kleinhirn" in containers

    def test_ancestors_follow_eqv_both_ways(self):
        dm = self.build()
        dm.add_axioms("Cerebellum < Brain_Part")
        assert "Brain_Part" in ancestors(dm, "Kleinhirn")


class TestRoleOnlyRefinement:
    def test_refinement_adding_only_role_links(self):
        dm = DomainMap("d")
        dm.add_role("has")
        dm.add_axioms(
            """
            Basket_Cell < Neuron
            Cerebellar_Cortex < Tissue
            """
        )
        result = register_concepts(
            dm, "Cerebellar_Cortex < exists has.Basket_Cell"
        )
        assert result.new_concepts == []
        assert result.new_isa == []
        # the closure also lifts the link to the superclass: having a
        # Basket_Cell is having a Neuron
        assert result.new_role_links == [
            ("Cerebellar_Cortex", "has", "Basket_Cell"),
            ("Cerebellar_Cortex", "has", "Neuron"),
        ]
        # medcache seeds exactly the link endpoints
        assert result.touched_concepts() == {
            "Cerebellar_Cortex",
            "Basket_Cell",
            "Neuron",
        }

    def test_role_only_refinement_extends_has_a_star(self):
        dm = DomainMap("d")
        dm.add_role("has")
        dm.add_axioms("Basket_Cell < Neuron")
        dm.add_concept("Dendrite")  # refinements must attach to the map
        before = has_a_star(dm)
        register_concepts(dm, "Neuron < exists has.Dendrite")
        after = has_a_star(dm)
        assert ("Neuron", "Dendrite") in after - before
        # the link is inherited downward by the subclass
        assert ("Basket_Cell", "Dendrite") in after
