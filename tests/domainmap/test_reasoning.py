"""Tests for restricted subsumption reasoning (Proposition 1 boundary)."""

import pytest

from repro.errors import UndecidableFragmentError
from repro.domainmap import (
    DomainMap,
    Reasoner,
    check_fragment,
    parse_concept,
    subsumes,
)
from repro.domainmap.dl import Conj, Eqv, Exists, Named, Sub


@pytest.fixture
def anatomy():
    dm = DomainMap("t")
    dm.add_axioms(
        """
        Neuron < Cell
        Neuron < exists has.Compartment
        Spiny_Neuron = Neuron & exists has.Spine
        Purkinje_Cell < Spiny_Neuron
        Spine < Compartment
        Big_Spine < Spine
        """
    )
    return dm


class TestFragmentBoundary:
    def test_clean_map_accepted(self, anatomy):
        assert check_fragment(anatomy)

    def test_disjunction_rejected(self):
        dm = DomainMap("t")
        dm.add_axiom("M < exists proj.(A | B)")
        with pytest.raises(UndecidableFragmentError):
            check_fragment(dm)

    def test_forall_rejected(self):
        dm = DomainMap("t")
        dm.add_axiom("M < all has.D")
        with pytest.raises(UndecidableFragmentError):
            check_fragment(dm)

    def test_rules_rejected(self, anatomy):
        anatomy.add_rule("p(X) :- concept(X).")
        with pytest.raises(UndecidableFragmentError):
            check_fragment(anatomy)

    def test_complex_lhs_rejected(self):
        dm = DomainMap("t")
        dm.add_axiom(Sub(Conj([Named("A"), Named("B")]), Named("C")))
        with pytest.raises(UndecidableFragmentError):
            check_fragment(dm)

    def test_cyclic_definition_rejected(self):
        dm = DomainMap("t")
        dm.add_axiom("A < exists r.B")
        dm.add_axiom("B < exists r.A")
        with pytest.raises(UndecidableFragmentError):
            check_fragment(dm)

    def test_reasoner_construction_enforces_fragment(self):
        dm = DomainMap("t")
        dm.add_axiom("M < all has.D")
        with pytest.raises(UndecidableFragmentError):
            Reasoner(dm)


class TestSubsumption:
    def test_told_subsumption(self, anatomy):
        assert subsumes(anatomy, "Cell", "Neuron")

    def test_transitive_subsumption(self, anatomy):
        assert subsumes(anatomy, "Cell", "Purkinje_Cell")

    def test_through_definition(self, anatomy):
        assert subsumes(anatomy, "Neuron", "Spiny_Neuron")
        assert subsumes(anatomy, "Neuron", "Purkinje_Cell")

    def test_not_subsumed(self, anatomy):
        assert not subsumes(anatomy, "Purkinje_Cell", "Neuron")
        assert not subsumes(anatomy, "Spine", "Neuron")

    def test_reflexive(self, anatomy):
        assert subsumes(anatomy, "Neuron", "Neuron")

    def test_definition_sufficiency(self, anatomy):
        # Anything that is a Neuron with a Spine IS a Spiny_Neuron.
        expr = parse_concept("Neuron & exists has.Spine")
        assert subsumes(anatomy, "Spiny_Neuron", expr)

    def test_definition_sufficiency_with_more_specific_filler(self, anatomy):
        expr = parse_concept("Neuron & exists has.Big_Spine")
        assert subsumes(anatomy, "Spiny_Neuron", expr)

    def test_primitive_not_inferred_from_structure(self, anatomy):
        # Purkinje_Cell is primitive: having its necessary conditions
        # does not make something a Purkinje_Cell.
        expr = parse_concept("Spiny_Neuron")
        assert not subsumes(anatomy, "Purkinje_Cell", expr)

    def test_existential_monotonicity(self, anatomy):
        reasoner = Reasoner(anatomy)
        general = Exists("has", Named("Compartment"))
        specific = Exists("has", Named("Spine"))
        assert reasoner.subsumes(general, specific)
        assert not reasoner.subsumes(specific, general)

    def test_conjunction_subsumption(self, anatomy):
        reasoner = Reasoner(anatomy)
        assert reasoner.subsumes(
            parse_concept("Cell"), parse_concept("Neuron & exists has.Spine")
        )

    def test_equivalent(self, anatomy):
        reasoner = Reasoner(anatomy)
        assert reasoner.equivalent(
            "Spiny_Neuron", parse_concept("Neuron & exists has.Spine")
        )
        assert not reasoner.equivalent("Spiny_Neuron", "Neuron")

    def test_satisfiable_in_fragment(self, anatomy):
        assert Reasoner(anatomy).satisfiable("Purkinje_Cell")

    def test_classify(self, anatomy):
        pairs = Reasoner(anatomy).classify()
        assert ("Cell", "Purkinje_Cell") in pairs
        assert ("Neuron", "Spiny_Neuron") in pairs
        assert ("Purkinje_Cell", "Neuron") not in pairs

    def test_multiple_definitions_conjoin(self):
        dm = DomainMap("t")
        dm.add_axiom("A < B")
        dm.add_axiom("A < C")
        assert subsumes(dm, "B", "A")
        assert subsumes(dm, "C", "A")
