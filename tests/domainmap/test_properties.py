"""Property-based tests (hypothesis) for domain-map operations."""

import networkx as nx
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.domainmap import (
    DomainMap,
    deductive_closure,
    downward_closure,
    has_a_star,
    isa_closure,
    least_upper_bounds,
    navigation_graph,
    part_tree,
    transitive_closure,
    upper_bounds,
)
from repro.errors import NoUpperBoundError

# -- random acyclic domain maps ----------------------------------------

CONCEPTS = ["C%d" % i for i in range(8)]


@st.composite
def acyclic_dms(draw):
    """Random DAG-shaped domain maps: isa and has edges only go from
    lower to higher index, so no cycles arise."""
    dm = DomainMap("random")
    dm.add_concepts(CONCEPTS)
    dm.add_role("has")
    n_edges = draw(st.integers(0, 14))
    for _ in range(n_edges):
        a = draw(st.integers(0, 6))
        b = draw(st.integers(a + 1, 7))
        kind = draw(st.sampled_from(["isa", "has"]))
        if kind == "isa":
            dm.isa(CONCEPTS[a], CONCEPTS[b])
        else:
            dm.ex(CONCEPTS[a], "has", CONCEPTS[b])
    return dm


class TestClosureProperties:
    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=15))
    def test_transitive_closure_is_transitive_and_minimal(self, pairs):
        closure = transitive_closure(pairs)
        # transitivity
        for a, b in closure:
            for c, d in closure:
                if b == c:
                    assert (a, d) in closure
        # soundness: every closure pair has a path in the base graph
        graph = nx.DiGraph()
        graph.add_edges_from(pairs)
        for a, b in closure:
            assert nx.has_path(graph, a, b)

    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms())
    def test_isa_closure_contains_base_and_is_transitive(self, dm):
        closure = isa_closure(dm, reflexive=False)
        assert dm.isa_pairs() <= closure | {(a, a) for a in dm.concepts}
        for a, b in closure:
            for c, d in closure:
                if b == c:
                    assert (a, d) in closure

    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms())
    def test_dc_modes_nest(self, dm):
        down = deductive_closure(dm, "has", mode="down")
        paper = deductive_closure(dm, "has", mode="paper")
        full = deductive_closure(dm, "has", mode="full")
        assert down <= paper <= full

    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms())
    def test_dc_contains_base_links(self, dm):
        base = {(s, d) for s, r, d in dm.role_triples() if r == "has"}
        assert base <= deductive_closure(dm, "has", mode="down")

    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms())
    def test_full_dc_closed_under_isa_rewriting(self, dm):
        # if (x, y) in full dc, x' v x, y v y', then (x', y') in full dc
        full = deductive_closure(dm, "has", mode="full")
        rtc = isa_closure(dm, reflexive=True)
        for x, y in full:
            for sub, sup in rtc:
                if sup == x:
                    for y_sub, y_sup in rtc:
                        if y_sub == y:
                            assert (sub, y_sup) in full

    @settings(max_examples=30, deadline=None)
    @given(acyclic_dms())
    def test_datalog_backend_agrees(self, dm):
        from repro.datalog import evaluate
        from repro.domainmap import closure_program

        result = evaluate(closure_program(dm))
        datalog_star = {
            (a.args[0].value, a.args[1].value)
            for a in result.store.iter_atoms("has_a_star")
        }
        assert datalog_star == has_a_star(dm, "has")


class TestLubProperties:
    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms(), st.sets(st.sampled_from(CONCEPTS), min_size=1, max_size=3))
    def test_lubs_are_upper_bounds(self, dm, concepts):
        try:
            lubs = least_upper_bounds(dm, concepts)
        except NoUpperBoundError:
            return
        bounds = upper_bounds(dm, concepts)
        assert set(lubs) <= bounds

    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms(), st.sets(st.sampled_from(CONCEPTS), min_size=1, max_size=3))
    def test_lubs_are_minimal(self, dm, concepts):
        try:
            lubs = least_upper_bounds(dm, concepts)
        except NoUpperBoundError:
            return
        bounds = upper_bounds(dm, concepts)
        nav = navigation_graph(dm, "isa")
        for candidate in lubs:
            below = nx.descendants(nav, candidate)
            assert not (below & bounds - {candidate} & below)
            for other in bounds:
                if other != candidate:
                    # no other bound strictly below a lub
                    assert candidate not in nx.descendants(nav, other) or (
                        other not in below
                    )

    @settings(max_examples=30, deadline=None)
    @given(acyclic_dms(), st.sampled_from(CONCEPTS))
    def test_single_concept_lub_is_itself(self, dm, concept):
        assert least_upper_bounds(dm, [concept]) == [concept]

    @settings(max_examples=30, deadline=None)
    @given(acyclic_dms(), st.sets(st.sampled_from(CONCEPTS), min_size=1, max_size=3))
    def test_role_lub_contains_all_anchors(self, dm, concepts):
        try:
            lubs = least_upper_bounds(dm, concepts, order="has")
        except NoUpperBoundError:
            return
        for root in lubs:
            region = downward_closure(dm, root, "has")
            assert set(concepts) <= region


class TestTraversalProperties:
    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms(), st.sampled_from(CONCEPTS))
    def test_part_tree_nodes_reachable(self, dm, root):
        tree = part_tree(dm, root, "has")
        assert root in tree.nodes
        for node in tree.nodes:
            assert node == root or nx.has_path(tree, root, node)

    @settings(max_examples=40, deadline=None)
    @given(acyclic_dms(), st.sampled_from(CONCEPTS))
    def test_downward_closure_monotone_in_edges(self, dm, root):
        before = downward_closure(dm, root, "has")
        dm.ex(root, "has", "Extra")
        after = downward_closure(dm, root, "has")
        assert before <= after
        assert "Extra" in after


class TestRegistrationProperties:
    @settings(max_examples=30, deadline=None)
    @given(acyclic_dms())
    def test_registration_only_extends(self, dm):
        from repro.domainmap import register_concepts

        assume(dm.concepts)
        base_concepts = set(dm.concepts)
        base_axioms = list(dm.axioms)
        anchor = sorted(base_concepts)[0]
        register_concepts(dm, "Fresh < '%s'" % anchor)
        assert base_concepts <= dm.concepts
        assert all(axiom in dm.axioms for axiom in base_axioms)
        assert "Fresh" in dm.concepts
