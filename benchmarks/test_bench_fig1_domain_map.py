"""FIG1 — regenerate the Figure 1 domain map from Example 1's DL axioms.

The paper's Figure 1 draws the SYNAPSE + NCMIR knowledge: this bench
rebuilds the map from the eleven DL statements, checks every drawn edge
kind is present with the expected multiplicity, emits the edge listing
and DOT, and times construction + the Section 4 closures.
"""

import pytest

from conftest import report
from repro.domainmap import (
    deductive_closure,
    edge_census,
    has_a_star,
    isa_closure,
    to_dot,
    to_text,
)
from repro.neuro import build_figure1

#: (kind, src, role, dst) edges that MUST appear in the drawing
EXPECTED_EDGES = [
    ("ex", "Neuron", "has", "Compartment"),
    ("isa", "Axon", None, "Compartment"),
    ("isa", "Dendrite", None, "Compartment"),
    ("isa", "Soma", None, "Compartment"),
    ("isa", "Spiny_Neuron", None, "Neuron"),
    ("ex", "Spiny_Neuron", "has", "Spine"),
    ("isa", "Purkinje_Cell", None, "Spiny_Neuron"),
    ("isa", "Pyramidal_Cell", None, "Spiny_Neuron"),
    ("ex", "Dendrite", "has", "Branch"),
    ("isa", "Shaft", None, "Branch"),
    ("ex", "Shaft", "has", "Spine"),
    ("ex", "Spine", "contains", "Ion_Binding_Protein"),
    ("isa", "Spine", None, "Ion_Regulating_Component"),
    ("ex", "Ion_Activity", "subprocess_of", "Neurotransmission"),
    ("isa", "Ion_Binding_Protein", None, "Protein"),
    ("ex", "Ion_Binding_Protein", "controls", "Ion_Activity"),
    ("ex", "Ion_Regulating_Component", "regulates", "Ion_Activity"),
]


def test_fig1_regeneration(benchmark):
    dm = build_figure1()

    drawn = {(e.kind, e.src, e.role, e.dst) for e in dm.edges()}
    missing = [edge for edge in EXPECTED_EDGES if edge not in drawn]
    assert not missing, "Figure 1 edges missing from the drawing: %r" % missing

    census = edge_census(dm)
    assert census == {"eqv": 2, "ex": 10, "isa": 10}
    assert len(dm.concepts) == 16
    assert dm.roles == {
        "has",
        "contains",
        "controls",
        "regulates",
        "subprocess_of",
    }

    # semantic consequences the paper derives from the map
    star = has_a_star(dm, "has")
    assert ("Purkinje_Cell", "Spine") in star
    assert ("Pyramidal_Cell", "Spine") in star
    closure = isa_closure(dm)
    assert ("Purkinje_Cell", "Neuron") in closure

    dot = to_dot(dm)
    assert '"Purkinje_Cell"' in dot

    report(
        "FIG1: domain map for SYNAPSE and NCMIR (Example 1 axioms)",
        [
            to_text(dm),
            "",
            "edge census: %r" % census,
            "has_a_star links: %d" % len(star),
        ],
    )

    def kernel():
        fresh = build_figure1()
        has_a_star(fresh, "has")
        deductive_closure(fresh, "contains")
        return isa_closure(fresh)

    benchmark(kernel)
