"""EX3 — Example 3: cardinality constraints on has(neuron, axon).

card_A(N) = (N = 1): an axon is contained in exactly one neuron;
card_B(N) = (N <= 2): a neuron can have at most two axons.  The bench
seeds both violations, asserts the paper's witnesses (w6=1 and w>2,
here `w_card_neq` / `w_card_gt`), and times checking as the instance
count grows.
"""

import pytest

from conftest import report
from repro.gcm import ConceptualModel, cardinality_constraint, check


def build_cm(n_ok=50, violations=True):
    cm = ConceptualModel("card")
    cm.add_class("neuron")
    cm.add_class("axon")
    cm.add_relation("has", [("whole", "neuron"), ("part", "axon")])
    for i in range(n_ok):
        cm.add_relation_instance("has", whole="n%d" % i, part="a%d" % i)
    if violations:
        # n_shared has three axons; a_shared sits in two neurons
        for axon in ("ax1", "ax2", "ax3"):
            cm.add_relation_instance("has", whole="n_multi", part=axon)
        cm.add_relation_instance("has", whole="n_a", part="a_shared")
        cm.add_relation_instance("has", whole="n_b", part="a_shared")
    return cm


CONSTRAINTS = [
    cardinality_constraint("has", 2, counted_position=0, exact=1),
    cardinality_constraint("has", 2, counted_position=1, max_count=2),
]


def test_ex3_cardinality(benchmark):
    clean = check(build_cm(violations=False), CONSTRAINTS)
    assert clean.ok

    violated = check(build_cm(violations=True), CONSTRAINTS)
    kinds = violated.by_kind()
    assert set(kinds) == {"w_card_neq", "w_card_gt"}
    # exactly the seeded violations
    assert [w.context for w in kinds["w_card_neq"]] == [
        ("has", 0, "a_shared", 2)
    ]
    assert [w.context for w in kinds["w_card_gt"]] == [("has", 1, "n_multi", 3)]

    report(
        "EX3: cardinality ICs on has(neuron, axon)",
        [
            "clean data:    %s" % clean,
            "seeded data:   %d witnesses" % len(violated),
        ]
        + ["  %s" % w for w in violated],
    )

    cm = build_cm(n_ok=200, violations=True)
    benchmark(lambda: check(cm, CONSTRAINTS))
