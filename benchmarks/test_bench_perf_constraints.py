"""PERF-IC — integrity-checking cost vs. instance count.

Characterizes the two-phase `ic`-witness check (Example 2/3 machinery)
as the object base grows.  Shape expectation: near-linear growth for
the cardinality checks (one aggregate scan) and the partial-order check
on tree-shaped hierarchies.
"""

import time

import pytest

from conftest import report
from repro.gcm import (
    ConceptualModel,
    cardinality_constraint,
    check,
    key_constraint,
    partial_order_constraint,
    scalar_method_constraint,
)


def build_cm(n):
    cm = ConceptualModel("perf")
    cm.add_class("neuron", methods={"label": "string"})
    cm.add_class("axon")
    cm.add_relation("has", [("whole", "neuron"), ("part", "axon")])
    for i in range(n):
        cm.add_instance("n%d" % i, "neuron")
        cm.set_value("n%d" % i, "label", "cell-%d" % i)
        cm.add_relation_instance("has", whole="n%d" % i, part="a%d" % i)
    return cm


CONSTRAINTS = [
    cardinality_constraint("has", 2, counted_position=0, exact=1),
    cardinality_constraint("has", 2, counted_position=1, max_count=2),
    scalar_method_constraint("neuron", "label"),
    key_constraint("neuron", ["label"]),
    partial_order_constraint("subclass", "class"),
]


def test_ic_cost_scaling(benchmark):
    rows = []
    for n in (50, 100, 200):
        cm = build_cm(n)
        start = time.perf_counter()
        result = check(cm, CONSTRAINTS)
        seconds = time.perf_counter() - start
        assert result.ok
        rows.append((n, seconds))

    # growth should be far from quadratic blowup: 4x data < ~16x time
    assert rows[-1][1] < rows[0][1] * 16

    lines = ["instances  check(s)"]
    for n, seconds in rows:
        lines.append("%9d  %8.4f" % (n, seconds))
    report("PERF-IC: integrity checking vs. object-base size", lines)

    cm = build_cm(100)
    benchmark(lambda: check(cm, CONSTRAINTS))


def test_ic_detects_seeded_violations_at_scale(benchmark):
    cm = build_cm(100)
    cm.add_relation_instance("has", whole="n_extra", part="a0")  # a0 shared
    cm.set_value("n0", "label", "cell-1")  # duplicate key + non-scalar
    result = check(cm, CONSTRAINTS)
    kinds = set(result.by_kind())
    assert "w_card_neq" in kinds
    assert "w_key" in kinds
    assert "w_scalar" in kinds
    benchmark(lambda: check(cm, CONSTRAINTS))
