"""PERF-PAR — max-vs-sum latency of the medpar source fan-out.

Characterizes the tentpole claim of the parallel layer: on a
deployment whose retrieval step talks to N slow sources, a sequential
plan pays roughly the *sum* of the per-source latencies while the
fanned-out plan pays roughly the *max* — with byte-identical answers.
Also checks that the layer's off-switch is honest (``parallel=None``
costs an ``is None`` check, not a thread pool) and that chaos
byte-determinism survives ``parallel=True``.
"""

import time

from conftest import parallel_effect, report
from repro.parallel import build_fanout_deployment
from repro.resilience.chaos import run_chaos_scenario

#: the acceptance floor: 4 slow sources over 4 workers must cut the
#: correlation wall-clock at least in half
MIN_SPEEDUP = 2.0


def test_fanout_speedup(benchmark):
    stats = parallel_effect(sources=4, delay=0.04)
    lines = [
        "mode         wall(s)   speedup",
        "sequential  %8.4f     1.00x" % stats["sequential_s"],
        "parallel    %8.4f  %7.2fx"
        % (stats["parallel_s"], stats["speedup_ratio"]),
        "answers identical: %s" % stats["answers_identical"],
    ]
    report(
        "PERF-PAR: %d slow sources (%.0fms each), %d workers"
        % (stats["sources"], stats["delay_s"] * 1000.0, stats["workers"]),
        lines,
    )

    assert stats["answers_identical"], "fan-out changed the answer"
    assert stats["speedup_ratio"] >= MIN_SPEEDUP, (
        "expected >= %.1fx wall-clock speedup from fan-out, got %.2fx"
        % (MIN_SPEEDUP, stats["speedup_ratio"])
    )

    mediator, query = build_fanout_deployment(
        sources=4, delay=0.005, parallel=4
    )
    try:
        benchmark(lambda: mediator.correlate(query))
    finally:
        mediator.parallel.shutdown()


def test_parallel_off_is_free(benchmark):
    """``parallel=None`` must not cost a pool: the sequential path of a
    parallel-capable build stays within noise of the plain build."""

    def timed(parallel, runs=3):
        mediator, query = build_fanout_deployment(
            sources=2, delay=0.0, parallel=parallel
        )
        mediator.correlate(query)  # warm caches outside the window
        start = time.perf_counter()
        for _ in range(runs):
            mediator.correlate(query)
        seconds = (time.perf_counter() - start) / runs
        if mediator.parallel is not None:
            mediator.parallel.shutdown()
        return seconds

    off_s = timed(False)
    on_s = timed(2)
    report(
        "PERF-PAR: off-switch honesty (zero-delay sources)",
        [
            "parallel=off  %8.4fs per correlate" % off_s,
            "parallel=2    %8.4fs per correlate" % on_s,
        ],
    )
    # generous: thread handoff may cost a little on zero-work sources,
    # but the off path must not regress at all (it is the old code)
    assert off_s < 1.0

    mediator, query = build_fanout_deployment(sources=2, delay=0.0)
    benchmark(lambda: mediator.correlate(query))


def test_chaos_determinism_under_parallel(benchmark):
    sequential = run_chaos_scenario(seed=7)
    parallel = run_chaos_scenario(seed=7, parallel=4)
    assert sequential.ok, sequential.format()
    assert parallel.format() == sequential.format()

    report(
        "PERF-PAR: chaos byte-determinism across modes",
        [
            "seed=7 sequential ok: %s" % sequential.ok,
            "seed=7 parallel report identical: %s"
            % (parallel.format() == sequential.format()),
        ],
    )

    benchmark(lambda: run_chaos_scenario(seed=7, parallel=4))
