"""PERF-CLO — closure operations on growing domain maps.

Characterizes the Section 4 graph operations (isa closure, deductive
closure / has_a_star, lub) as the map grows, and compares the two
backends: in-memory graph algorithms vs. the paper's own Datalog rules.
Shape expectation: both backends compute identical relations; the graph
backend wins by a large factor (it exploits adjacency directly), which
is why the mediator uses it while keeping the Datalog program as the
executable specification.
"""

import time

import pytest

from conftest import report
from repro.datalog import evaluate
from repro.domainmap import (
    DomainMap,
    closure_program,
    deductive_closure,
    has_a_star,
    isa_closure,
    lub,
)


def synthetic_dm(levels, fanout=2):
    """A part/isa lattice: `levels` tiers of regions, each with parts
    one tier down and a specialization hierarchy per tier."""
    dm = DomainMap("synthetic_%d" % levels)
    previous = ["root"]
    for level in range(1, levels + 1):
        current = []
        for parent_index, parent in enumerate(previous):
            for child_index in range(fanout):
                node = "n_%d_%d_%d" % (level, parent_index, child_index)
                dm.ex(parent, "has", node)
                current.append(node)
            # one specialization per parent
            special = "s_%d_%d" % (level, parent_index)
            dm.isa(special, parent)
            current.append(special)
        previous = current
    return dm


def backend_equivalence(dm):
    graph_star = has_a_star(dm, "has")
    result = evaluate(closure_program(dm))
    datalog_star = {
        (a.args[0].value, a.args[1].value)
        for a in result.store.iter_atoms("has_a_star")
    }
    return graph_star, datalog_star


def test_backends_equivalent_and_scaling(benchmark):
    rows = []
    for levels in (3, 4, 5):
        dm = synthetic_dm(levels)

        start = time.perf_counter()
        graph_star = has_a_star(dm, "has")
        graph_seconds = time.perf_counter() - start

        start = time.perf_counter()
        result = evaluate(closure_program(dm))
        datalog_seconds = time.perf_counter() - start
        datalog_star = {
            (a.args[0].value, a.args[1].value)
            for a in result.store.iter_atoms("has_a_star")
        }

        assert graph_star == datalog_star
        rows.append(
            (
                levels,
                len(dm.concepts),
                len(graph_star),
                graph_seconds,
                datalog_seconds,
            )
        )

    # the graph backend must win, increasingly so on the largest map
    assert all(g < d for _l, _c, _e, g, d in rows)

    lines = [
        "levels  concepts  has_a_star  graph(s)   datalog(s)  speedup",
    ]
    for levels, concepts, edges, g, d in rows:
        lines.append(
            "%6d  %8d  %10d  %8.4f   %9.4f  %6.1fx"
            % (levels, concepts, edges, g, d, d / g)
        )
    report("PERF-CLO: closure backends on growing maps", lines)

    big = synthetic_dm(5)

    def kernel():
        isa_closure(big)
        star = has_a_star(big, "has")
        deductive_closure(big, "has", mode="down")
        return star

    benchmark(kernel)


def test_lub_cost(benchmark):
    dm = synthetic_dm(5)
    leaves = sorted(c for c in dm.concepts if c.startswith("n_5_"))[:4]
    root = lub(dm, leaves, order="has")
    assert root in dm.concepts
    # the lub contains every leaf
    from repro.domainmap import downward_closure

    assert set(leaves) <= downward_closure(dm, root, "has")
    benchmark(lambda: lub(dm, leaves, order="has"))
