"""Q5 — the Section 5 query and its four-step plan.

"What is the distribution of those calcium-binding proteins that are
found in neurons that receive signals from parallel fibers in rat
brains?"  The paper's plan: (1) push selections (rat, parallel fiber)
to SENSELAB and get bindings for X and Y; (2) select sources via the
domain map — "in our case, only NCMIR is returned"; (3) push the X, Y
locations to NCMIR and retrieve only matching proteins; (4) compute the
lub as distribution root and aggregate along the downward closure.

The bench asserts each of those outcomes and times the full planned
query.
"""

import pytest

from conftest import report
from repro.neuro import build_scenario, section5_query


@pytest.fixture(scope="module")
def mediator():
    return build_scenario(seed=2001).mediator


def test_sec5_query_plan(benchmark, mediator):
    plan, context = mediator.correlate(section5_query())

    # the four steps (lub and aggregate shown separately)
    assert plan.kinds == [
        "push-selection",
        "select-sources",
        "retrieve",
        "compute-lub",
        "aggregate",
    ]

    # step 1: bindings for the neuron/compartment pair (X, Y)
    bindings = context.bindings[("receiving_neuron", "receiving_compartment")]
    assert bindings == [("Purkinje_Cell", "Purkinje_Dendrite")]

    # step 2: "only NCMIR is returned"
    assert context.selected_sources == ["NCMIR"]

    # step 3: only proteins found at X, Y were retrieved, and the
    # calcium filter was applied
    assert context.retrieved
    for source, row in context.retrieved:
        assert source == "NCMIR"
        assert row["ion_bound"] == "calcium"
        assert row["location"] in ("Purkinje Cell", "Purkinje Cell dendrite")

    # step 4: a reasonable root and per-protein distributions
    assert context.root == "Purkinje_Cell"
    proteins = [group for group, _d in context.answers]
    assert "Ryanodine Receptor" in proteins
    assert "Calbindin" in proteins
    assert "GABA-A Receptor" not in proteins
    assert "Kv1.1 Channel" not in proteins
    for _group, distribution in context.answers:
        assert distribution.total() is not None and distribution.total() > 0

    lines = ["plan:", plan.describe(), "", "answers (protein, root total):"]
    for group, distribution in context.answers:
        lines.append("  %-22s %.3f" % (group, distribution.total()))
    report("Q5: Section 5 query over the mediated system", lines)

    query = section5_query()
    benchmark(lambda: mediator.correlate(query))
