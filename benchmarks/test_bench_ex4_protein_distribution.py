"""EX4 — Example 4: the protein_distribution integrated view.

"The result for the computation for P="cerebellum", Z="rat", and
Y="Ryanodine Receptor" can be seen in the system snapshot" — this
bench computes exactly that view instance: the per-region distribution
of Ryanodine Receptor amounts below Cerebellum for rat, via
has_a_star + the recursive `aggregate`.  Shape assertions encode the
generator's known biology (dendritic RyR dominates somatic RyR) and
the rollup invariant (root total = sum of anchored direct values).
"""

import pytest

from conftest import report
from repro.neuro import build_scenario


@pytest.fixture(scope="module")
def mediator():
    return build_scenario(seed=2001).mediator


def test_ex4_protein_distribution(benchmark, mediator):
    distribution = mediator.compute_distribution(
        "Cerebellum",
        "amount",
        group_attr="protein_name",
        group_value="Ryanodine Receptor",
        filters={"organism": "rat"},
    )

    # regions with direct anchored values
    dendrite = distribution.row("Purkinje_Dendrite")
    soma = distribution.row("Purkinje_Soma")
    spine = distribution.row("Purkinje_Spine")
    assert dendrite.direct is not None
    assert soma.direct is not None
    assert spine.direct is not None
    # known biology encoded in the generator: RyR is dendritic
    assert dendrite.direct > soma.direct

    # rollup invariant: the root total equals the sum of every anchored
    # direct value below it (each object counted exactly once)
    total = distribution.total()
    assert total == pytest.approx(
        sum(row.direct for row in distribution.rows if row.direct is not None)
    )
    # intermediate region: cell total covers its parts
    cell = distribution.row("Purkinje_Cell")
    assert cell.cumulative == pytest.approx(total)
    assert dendrite.cumulative == pytest.approx(
        dendrite.direct + spine.cumulative
    )

    # the view instance is queryable at the conceptual level
    mediator.materialize_distribution(
        "protein_distribution",
        "Ryanodine Receptor",
        "Cerebellum",
        filters={"organism": "rat"},
        extra={"animal": "rat"},
    )
    rows = mediator.ask(
        "D : protein_distribution[protein_name -> 'Ryanodine Receptor'; "
        "animal -> rat; distribution_root -> R]"
    )
    assert rows and rows[0]["R"] == "Cerebellum"
    region_rows = mediator.ask("dist_row(D, C, Direct, Cum)")
    assert len(region_rows) >= 3

    report(
        "EX4: protein_distribution(P=Cerebellum, Z=rat, Y=Ryanodine Receptor)",
        [str(distribution)],
    )

    benchmark(
        lambda: mediator.compute_distribution(
            "Cerebellum",
            "amount",
            group_attr="protein_name",
            group_value="Ryanodine Receptor",
            filters={"organism": "rat"},
        )
    )
