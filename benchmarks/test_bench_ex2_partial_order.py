"""EX2 — Example 2: partial-order integrity constraints.

Rules (1)-(3) test whether a relation R is a partial order on a class
C, inserting wrc/wtc/was failure witnesses into `ic`.  The paper's own
instantiation — R = `subclass`, C = the metaclass `class` — exercises
schema-level reasoning.  The bench runs both a consistent hierarchy
(no witnesses: the Table 1 axioms guarantee reflexivity+transitivity)
and seeded violations, then times the check.
"""

import pytest

from conftest import report
from repro.gcm import ConceptualModel, check, partial_order_constraint


def consistent_cm(depth=5, fanout=2):
    cm = ConceptualModel("consistent")
    cm.add_class("c0")
    names = ["c0"]
    counter = 0
    for _level in range(depth):
        next_names = []
        for parent in names[:fanout]:
            for _child in range(fanout):
                counter += 1
                name = "c%d" % counter
                cm.add_class(name, superclasses=[parent])
                next_names.append(name)
        names = next_names
    return cm


def cyclic_cm():
    cm = ConceptualModel("cyclic")
    cm.add_class("a", superclasses=["b"])
    cm.add_class("b", superclasses=["c"])
    cm.add_class("c", superclasses=["a"])
    return cm


def plain_relation_cm():
    """A user relation over nodes missing reflexivity and transitivity."""
    cm = ConceptualModel("plain")
    cm.add_class("node")
    for obj in ("x", "y", "z"):
        cm.add_instance(obj, "node")
    cm.add_datalog("r(x, x). r(y, y). r(z, z). r(x, y). r(y, z).")
    return cm


def test_ex2_partial_order(benchmark):
    constraint = partial_order_constraint("subclass", "class")

    clean = check(consistent_cm(), [constraint])
    assert clean.ok

    cyclic = check(cyclic_cm(), [constraint])
    # the 3-cycle violates antisymmetry pairwise: 6 ordered pairs
    assert cyclic.kinds() == ["was"]
    assert len(cyclic) == 6

    missing_tc = check(
        plain_relation_cm(), [partial_order_constraint("r", "node")]
    )
    kinds = missing_tc.by_kind()
    assert "wtc" in kinds  # r(x,y), r(y,z) but no r(x,z)
    assert "wrc" not in kinds  # reflexive pairs were supplied

    report(
        "EX2: partial-order ICs (rules (1)-(3))",
        [
            "consistent hierarchy:      %s" % clean,
            "",
            "cyclic subclass hierarchy: %d witnesses, kinds=%s"
            % (len(cyclic), cyclic.kinds()),
        ]
        + ["  %s" % w for w in cyclic]
        + [
            "",
            "non-transitive user relation: kinds=%s" % missing_tc.kinds(),
        ]
        + ["  %s" % w for w in missing_tc],
    )

    cm = consistent_cm()
    benchmark(lambda: check(cm, [constraint]))
