"""PERF-WFS — well-founded vs. stratified evaluation.

The GCM rule language is Datalog with well-founded negation
(Section 3).  This bench characterizes the price of the alternating-
fixpoint fallback on win-move games (the canonical non-stratifiable
program) vs. stratified evaluation of an equivalent-size positive
program.  Shape expectation: WFS costs a small constant number of full
fixpoints (its alternating iterations), so it stays within roughly an
order of magnitude of stratified evaluation and scales with the same
data-complexity curve.
"""

import time

import pytest

from conftest import report
from repro.datalog import Const, Program, evaluate, fact, parse_program


def chain_moves(n):
    """A long chain a0 -> a1 -> ... (fully determined game)."""
    program = Program()
    for i in range(n):
        program.add(fact("move", Const("a%d" % i), Const("a%d" % (i + 1))))
    program.extend(parse_program("win(X) :- move(X, Y), not win(Y)."))
    return program


def chain_tc(n):
    """Positive transitive closure over the same chain."""
    program = Program()
    for i in range(n):
        program.add(fact("edge", Const("a%d" % i), Const("a%d" % (i + 1))))
    program.extend(
        parse_program("tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y).")
    )
    return program


def test_wfs_vs_stratified(benchmark):
    rows = []
    for n in (50, 100, 200):
        wfs_program = chain_moves(n)
        start = time.perf_counter()
        wfs_result = evaluate(wfs_program)
        wfs_seconds = time.perf_counter() - start
        assert wfs_result.used_well_founded
        # a determined chain: alternating positions win
        wins = len(wfs_result.store.rows(("win", 1)))
        assert wins == n // 2
        assert len(wfs_result.undefined) == 0

        positive = chain_tc(n)
        start = time.perf_counter()
        positive_result = evaluate(positive)
        positive_seconds = time.perf_counter() - start
        assert not positive_result.used_well_founded

        rows.append((n, wfs_seconds, positive_seconds))

    lines = ["chain n   WFS(s)     stratified tc(s)   ratio"]
    for n, wfs_seconds, positive_seconds in rows:
        lines.append(
            "%7d  %8.4f   %16.4f   %5.1fx"
            % (n, wfs_seconds, positive_seconds, wfs_seconds / positive_seconds)
        )
    report("PERF-WFS: well-founded fallback cost (win-move chains)", lines)

    program = chain_moves(100)
    benchmark(lambda: evaluate(program))


def test_undefined_atoms_detected(benchmark):
    # cycles leave positions undefined; WFS must report them
    program = Program()
    for i in range(20):
        program.add(fact("move", Const("c%d" % i), Const("c%d" % ((i + 1) % 20))))
    program.extend(parse_program("win(X) :- move(X, Y), not win(Y)."))
    result = evaluate(program)
    assert len(result.undefined.rows(("win", 1))) == 20
    benchmark(lambda: evaluate(program))
