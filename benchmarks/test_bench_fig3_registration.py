"""FIG3 — domain map after registering MyNeuron and MyDendrite.

Figure 3 shows the map after a source registers two refinements; the
paper derives: "MyNeuron, like any Medium_Spiny_Neuron projects to
certain structures (OR in Fig. 3).  With the newly registered
knowledge, it follows that MyNeuron definitely projects to Globus
Palladius External."  The bench replays the registration, asserts every
derived edge, and times it.
"""

import pytest

from conftest import report
from repro.domainmap import (
    definite_projections,
    isa_closure,
    register_concepts,
    to_text,
)
from repro.neuro import FIGURE3_REGISTRATION, build_figure3_base


def test_fig3_registration(benchmark):
    dm = build_figure3_base()
    before_concepts = len(dm.concepts)

    result = register_concepts(dm, FIGURE3_REGISTRATION)

    # the two dark nodes of Figure 3
    assert result.new_concepts == ["MyDendrite", "MyNeuron"]
    assert len(dm.concepts) == before_concepts + 2

    closure = isa_closure(dm)
    # necessary conditions became isa edges
    assert ("MyNeuron", "Medium_Spiny_Neuron") in closure
    assert ("MyNeuron", "Spiny_Neuron") in closure
    assert ("MyNeuron", "Neuron") in closure
    assert ("MyDendrite", "Dendrite") in closure
    assert ("MyDendrite", "Compartment") in closure

    # the (ex) and (all) edges of the dark region
    assert ("MyNeuron", "proj", "Globus_Pallidus_External") in dm.role_triples()
    assert ("MyDendrite", "exp", "Dopamine_R") in dm.role_triples()
    assert ("MyNeuron", "has", "MyDendrite") in dm.all_triples()

    # the paper's derived fact
    assert definite_projections(dm, "MyNeuron", "proj") == [
        "Globus_Pallidus_External"
    ]
    # inherited: the OR-node projection possibilities remain at the
    # superclass (no definite projection for Medium_Spiny_Neuron alone)
    assert definite_projections(dm, "Medium_Spiny_Neuron", "proj") == []

    report(
        "FIG3: registration of MyNeuron / MyDendrite",
        [
            result.describe(),
            "",
            "definite projections of MyNeuron: %s"
            % definite_projections(dm, "MyNeuron", "proj"),
        ],
    )

    def kernel():
        fresh = build_figure3_base()
        register_concepts(fresh, FIGURE3_REGISTRATION)
        return definite_projections(fresh, "MyNeuron", "proj")

    benchmark(kernel)
