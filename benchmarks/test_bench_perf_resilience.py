"""PERF-GUARD — cost of the medguard resilience layer.

Characterizes (a) the overhead of the resilience layer on the
source-query hot path — with no policy configured it is one ``is
None`` check and must be noise-level; a default policy adds a breaker
lookup and an outcome record per call — and (b) the deterministic
chaos scenario (retries, backoff on a virtual clock, breaker trips,
degraded-answer assembly), whose report must reproduce byte-for-byte.
"""

import time

from conftest import report, resilience_overhead
from repro.neuro import build_scenario, section5_query
from repro.resilience import ResiliencePolicy, SourceGuard
from repro.resilience.chaos import run_chaos_scenario


def test_source_query_overhead(benchmark):
    stats = resilience_overhead()
    lines = [
        "variant        per-call(s)   vs raw",
        "raw            %11.3e     1.00x" % stats["raw_call_s"],
        "no policy      %11.3e  %7.2fx"
        % (stats["no_policy_call_s"], stats["no_policy_overhead_ratio"]),
        "with policy    %11.3e  %7.2fx"
        % (stats["with_policy_call_s"], stats["with_policy_overhead_ratio"]),
    ]
    report("PERF-GUARD: source-query overhead", lines)

    # generous bounds: timer noise on a loaded box, not a perf budget.
    # the no-policy path adds a single attribute check.
    assert stats["no_policy_overhead_ratio"] < 2.0
    assert stats["with_policy_overhead_ratio"] < 5.0

    mediator = build_scenario(eager=False).mediator
    query = section5_query()
    benchmark(lambda: mediator.correlate(query))


def test_guarded_correlation_cost(benchmark):
    rows = []
    for label, policy in (
        ("none", None),
        ("default", ResiliencePolicy()),
        ("stale+deadline", ResiliencePolicy(serve_stale=True, plan_deadline=30.0)),
    ):
        scenario = build_scenario(eager=False)
        if policy is not None:
            scenario.mediator.resilience = SourceGuard(policy)
        start = time.perf_counter()
        result = scenario.mediator.correlate(section5_query())
        seconds = time.perf_counter() - start
        assert len(result.answers) == 4
        assert not result.degraded
        rows.append((label, seconds))

    lines = ["policy           q5(s)"]
    for label, seconds in rows:
        lines.append("%-15s %7.4f" % (label, seconds))
    report("PERF-GUARD: Section 5 under resilience policies", lines)

    scenario = build_scenario(eager=False)
    scenario.mediator.resilience = SourceGuard(ResiliencePolicy())
    query = section5_query()
    benchmark(lambda: scenario.mediator.correlate(query))


def test_chaos_scenario_cost(benchmark):
    first = run_chaos_scenario(seed=7)
    assert first.ok, first.format()
    assert run_chaos_scenario(seed=7).format() == first.format()

    lines = [
        "seed  ok    injected            virtual-backoff(s)",
        "%4d  %-5s %-19s %7.4f"
        % (
            7,
            first.ok,
            ",".join(
                "%s=%d" % pair for pair in sorted(first.injected.items())
            ),
            first.virtual_slept,
        ),
    ]
    report("PERF-GUARD: deterministic chaos scenario", lines)

    benchmark(lambda: run_chaos_scenario(seed=7))
