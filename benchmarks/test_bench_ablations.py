"""ABLATIONS — design choices called out in DESIGN.md.

* **Magic sets vs. full evaluation** — the Datalog-tier analogue of the
  paper's "pushing down selections": a selective goal over a long chain
  should be answered orders of magnitude faster by the rewritten
  program (which derives only the relevant suffix) than by full
  materialization.
* **Semi-naive vs. naive fixpoint** — the evaluator's delta restriction
  must beat re-firing every rule on the full store each round.
* **Traversal precision** — redundant-edge elimination and source-down
  (vs. full) deductive closure keep sibling anatomical regions out of a
  distribution's region; switching them off (full dc as navigation)
  demonstrably leaks.
"""

import time

import pytest

from conftest import report
from repro.datalog import Const, Program, evaluate, fact, parse_atom, parse_program
from repro.datalog.magic import magic_query, magic_transform
from repro.datalog.engine import match_atom

TC_RULES = "tc(X, Y) :- edge(X, Y). tc(X, Y) :- edge(X, Z), tc(Z, Y)."


def chain(n):
    program = Program()
    for i in range(n):
        program.add(fact("edge", Const("a%d" % i), Const("a%d" % (i + 1))))
    program.extend(parse_program(TC_RULES))
    return program


def test_magic_sets_vs_full(benchmark):
    rows = []
    for n in (100, 200, 400):
        program = chain(n)
        goal = parse_atom("tc(a%d, X)" % (n - 10))

        start = time.perf_counter()
        result_full = evaluate(program)
        full_answers = match_atom(result_full.store, goal)
        full_seconds = time.perf_counter() - start

        start = time.perf_counter()
        magic_answers = magic_query(program, goal)
        magic_seconds = time.perf_counter() - start

        assert magic_answers == full_answers
        assert len(magic_answers) == 10
        rows.append((n, full_seconds, magic_seconds))

    # magic must win decisively on every size and increasingly so
    assert all(m < f for _n, f, m in rows)
    assert rows[-1][1] / rows[-1][2] > 10

    lines = ["chain n  full-eval(s)  magic(s)   speedup"]
    for n, full_seconds, magic_seconds in rows:
        lines.append(
            "%7d  %12.4f  %8.4f  %7.1fx"
            % (n, full_seconds, magic_seconds, full_seconds / magic_seconds)
        )
    report("ABLATION: magic sets vs. full evaluation (goal tc(a_{n-10}, X))", lines)

    program = chain(300)
    goal = parse_atom("tc(a290, X)")
    benchmark(lambda: magic_query(program, goal))


def test_seminaive_vs_naive(benchmark):
    rows = []
    for n in (30, 60, 120):
        program = chain(n)

        start = time.perf_counter()
        semi = evaluate(program)
        semi_seconds = time.perf_counter() - start

        start = time.perf_counter()
        naive = evaluate(program, strategy="naive")
        naive_seconds = time.perf_counter() - start

        assert semi.store.same_facts(naive.store)
        rows.append((n, semi_seconds, naive_seconds))

    assert all(s < nv for _n, s, nv in rows)

    lines = ["chain n  seminaive(s)  naive(s)   speedup"]
    for n, semi_seconds, naive_seconds in rows:
        lines.append(
            "%7d  %12.4f  %8.4f  %7.1fx"
            % (n, semi_seconds, naive_seconds, naive_seconds / semi_seconds)
        )
    report("ABLATION: semi-naive vs. naive fixpoint (transitive closure)", lines)

    program = chain(60)
    benchmark(lambda: evaluate(program))


def test_traversal_precision(benchmark):
    """Full-dc navigation would leak sibling regions; the shipped
    traversal (source-down dc + redundant-edge elimination) does not."""
    import networkx as nx

    from repro.domainmap import deductive_closure, part_tree
    from repro.neuro import build_anatom

    dm = build_anatom()

    precise = set(part_tree(dm, "Cerebellum", "has").nodes)
    assert "Pyramidal_Cell" not in precise
    assert "Hippocampus" not in precise

    # the leaky variant: navigate the full dc plus isa-down directly
    leaky_graph = nx.DiGraph()
    leaky_graph.add_edges_from(deductive_closure(dm, "has", mode="full"))
    for sub, sup in dm.isa_pairs():
        leaky_graph.add_edge(sup, sub)
    leaky = {"Cerebellum"} | nx.descendants(leaky_graph, "Cerebellum")
    assert "Pyramidal_Cell" in leaky  # the leak the design avoids

    report(
        "ABLATION: traversal precision below Cerebellum",
        [
            "precise region size: %d (no hippocampal concepts)" % len(precise),
            "leaky   region size: %d (contains Pyramidal_Cell: %s)"
            % (len(leaky), "Pyramidal_Cell" in leaky),
        ],
    )

    benchmark(lambda: part_tree(dm, "Cerebellum", "has"))
