"""FIG2 — the model-based mediator architecture end-to-end.

Figure 2 shows wrappers lifting raw sources to conceptual models and
registering them (schemas, rules, capabilities, anchors) with the
mediator, "all over the wire in XML".  This bench drives the whole
path for the three KIND sources, reports the wire traffic and the
registered schema inventory, verifies the registration messages
round-trip losslessly, and times a full system bring-up.
"""

import pytest

from conftest import report
from repro.core import build_registration, parse_registration
from repro.neuro import build_ncmir, build_scenario, build_senselab, build_synapse


def test_fig2_architecture(benchmark):
    scenario = build_scenario()
    mediator = scenario.mediator

    # every source joined through an XML registration message
    assert len(mediator.wire_log) == 3
    assert all(size > 500 for _name, size in mediator.wire_log)

    # schema inventory after registration
    inventory = {}
    for source in mediator.source_names():
        capabilities = mediator.capabilities(source)
        inventory[source] = {
            "classes": sorted(capabilities),
            "patterns": sum(
                len(c.binding_patterns) for c in capabilities.values()
            ),
            "templates": sum(len(c.templates) for c in capabilities.values()),
            "anchors": mediator.index.concepts_of_source(source),
        }
    assert inventory["NCMIR"]["classes"] == ["protein_amount"]
    assert inventory["SENSELAB"]["classes"] == ["neurotransmission"]
    assert inventory["SYNAPSE"]["classes"] == ["reconstruction"]
    assert "Purkinje_Dendrite" in inventory["NCMIR"]["anchors"]
    assert "Pyramidal_Spine" in inventory["SYNAPSE"]["anchors"]

    # wire fidelity: message -> parse -> rebuild CM -> identical classes
    for build in (build_synapse, build_ncmir, build_senselab):
        wrapper = build()
        message = build_registration(wrapper, include_data=False)
        parsed = parse_registration(message)
        assert parsed.cm.class_names() == wrapper.schema_cm().class_names()
        for class_name, capability in wrapper.capabilities().items():
            rebuilt = parsed.capabilities[class_name]
            assert rebuilt.attributes == capability.attributes
            assert len(rebuilt.binding_patterns) == len(
                capability.binding_patterns
            )

    lines = ["wire traffic:"]
    for name, size in mediator.wire_log:
        lines.append("  %-24s %7d bytes" % (name, size))
    lines.append("")
    lines.append("registered inventory:")
    for source, info in sorted(inventory.items()):
        lines.append(
            "  %-10s classes=%s patterns=%d templates=%d"
            % (source, info["classes"], info["patterns"], info["templates"])
        )
        lines.append("             anchors=%s" % info["anchors"])
    report("FIG2: architecture bring-up (3 sources over the XML wire)", lines)

    benchmark(lambda: build_scenario())
