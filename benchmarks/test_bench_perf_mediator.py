"""PERF-MED — end-to-end mediated query cost and source selection.

Characterizes (a) the Section 5 correlation query as source data grows,
and (b) the benefit of semantic-index source selection: with the index,
the plan contacts only the sources anchored at the query's concepts;
without it (simulated by contacting every registered source), work
grows with the number of irrelevant sources.  Shape expectation:
selected-source count stays constant as decoy sources are added, and
planned-query latency is roughly flat, while the contact-everything
baseline degrades linearly.
"""

import time

import pytest

from conftest import report
from repro.core import Mediator
from repro.neuro import build_scenario, section5_query
from repro.sources import AnchorSpec, Column, RelStore, SourceQuery, Wrapper


def decoy_wrapper(index):
    """A source anchored at hippocampal concepts (irrelevant to Q5)."""
    name = "DECOY%d" % index
    store = RelStore(name)
    table = store.create_table(
        "protein_amount",
        [
            Column("id", "int"),
            Column("protein", "str"),
            Column("location", "str"),
            Column("amount", "float"),
        ],
        key="id",
    )
    for i in range(20):
        table.insert(
            {
                "id": i,
                "protein": "Synapsin",
                "location": "Pyramidal Cell dendrite",
                "amount": 1.0 + i * 0.1,
            }
        )
    wrapper = Wrapper(name, store)
    wrapper.export_class(
        "protein_amount",
        "protein_amount",
        "id",
        methods={
            "protein_name": "protein",
            "location": "location",
            "amount": "amount",
        },
        anchor=AnchorSpec(
            column="location",
            mapping={"Pyramidal Cell dendrite": "Pyramidal_Dendrite"},
        ),
        selectable={"location"},
    )
    return wrapper


def contact_everything(mediator, target_class):
    """The no-semantic-index baseline: scan every source exporting the
    target class."""
    rows = 0
    for source in mediator.source_names():
        wrapper = mediator.wrapper(source)
        if target_class in wrapper.exports:
            rows += len(wrapper.query(SourceQuery(target_class)))
    return rows


def test_source_selection_benefit(benchmark):
    rows = []
    for decoys in (0, 4, 8):
        scenario = build_scenario(eager=False)
        mediator = scenario.mediator
        for index in range(decoys):
            mediator.register(decoy_wrapper(index), eager=False)

        start = time.perf_counter()
        _plan, context = mediator.correlate(section5_query())
        planned_seconds = time.perf_counter() - start

        start = time.perf_counter()
        scanned = contact_everything(mediator, "protein_amount")
        scan_seconds = time.perf_counter() - start

        # the semantic index keeps ignoring the decoys
        assert context.selected_sources == ["NCMIR"]
        rows.append((decoys, planned_seconds, scan_seconds, scanned))

    # the baseline's scanned-row count grows with decoys; the plan's
    # source set does not
    assert rows[0][3] < rows[-1][3]

    lines = [
        "decoys  planned-q5(s)  scan-all(s)  scanned-rows  selected-sources",
    ]
    for decoys, planned, scan, scanned in rows:
        lines.append(
            "%6d  %13.4f  %11.4f  %12d  ['NCMIR']"
            % (decoys, planned, scan, scanned)
        )
    report("PERF-MED: semantic-index source selection", lines)

    scenario = build_scenario(eager=False)
    query = section5_query()
    benchmark(lambda: scenario.mediator.correlate(query))


def test_query_cost_vs_data_scale(benchmark):
    rows = []
    for scale in (1, 2, 4):
        scenario = build_scenario(scale=scale, eager=False)
        start = time.perf_counter()
        _plan, context = scenario.mediator.correlate(section5_query())
        seconds = time.perf_counter() - start
        answers = len(context.answers)
        assert answers == 4  # the four calcium binders
        rows.append((scale, len(context.retrieved), seconds))

    lines = ["scale  retrieved-rows  q5(s)"]
    for scale, retrieved, seconds in rows:
        lines.append("%5d  %14d  %6.4f" % (scale, retrieved, seconds))
    report("PERF-MED: Section 5 query vs. data scale", lines)

    scenario = build_scenario(scale=2, eager=False)
    query = section5_query()
    benchmark(lambda: scenario.mediator.correlate(query))
