"""PERF-CACHE — effect and cost of the medcache layer.

Characterizes (a) the warm-cache Section 5 correlation — zero source
calls, zero query wire bytes, measurably faster than the cold run;
(b) the no-cache overhead on the source-query hot path (one ``is
None`` check: must be noise); (c) domain-map-aware invalidation — a
registration refining one branch drops only the entries anchored
there; and (d) the byte-for-byte determinism of ``repro cache stats
--json`` under a fixed seed.
"""

import contextlib
import io
import time

from conftest import cache_effect, report
from repro import obs
from repro.cache import AnswerCache
from repro.neuro import build_scenario, section5_query
from repro.neuro.anatom_source import DM_REFINEMENT, build_anatom_source
from repro.sources import SourceQuery


def test_warm_cache_correlation(benchmark):
    stats = cache_effect()
    lines = [
        "run    q5(s)     source-queries  query-wire-bytes",
        "cold   %7.4f  %14d  %16d"
        % (stats["cold_s"], stats["cold_source_queries"], stats["cold_query_wire_bytes"]),
        "warm   %7.4f  %14d  %16d"
        % (stats["warm_s"], stats["warm_source_queries"], stats["warm_query_wire_bytes"]),
        "per source call: wire %.3es  hit %.3es  speedup %.1fx"
        % (stats["wire_call_s"], stats["hit_call_s"], stats["speedup_ratio"]),
        "entries=%d hits=%d misses=%d"
        % (stats["entries"], stats["hits"], stats["misses"]),
    ]
    report("PERF-CACHE: cold vs warm Section 5 over the XML wire", lines)

    assert stats["answers"] == 4
    assert stats["warm_source_queries"] == 0
    assert stats["warm_query_wire_bytes"] == 0
    assert stats["cold_query_wire_bytes"] > 0
    # a hit skips XML framing, parsing and the source scan; the
    # measured ratio is ~80x, asserted with a generous margin
    assert stats["speedup_ratio"] > 2.0

    mediator = build_scenario(
        eager=False, dialogue_via_xml=True, cache=AnswerCache()
    ).mediator
    query = section5_query()
    mediator.correlate(query)  # prime
    benchmark(lambda: mediator.correlate(query))


def test_no_cache_overhead(calls=200):
    query = SourceQuery(
        "protein_amount", {"location": "Purkinje Cell dendrite"}
    )

    def timed(fn):
        fn()  # warm interpreter caches outside the timed window
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        return (time.perf_counter() - start) / calls

    mediator = build_scenario(eager=False).mediator
    wrapper = mediator.wrapper("NCMIR")
    raw_s = timed(lambda: mediator._source_query(wrapper, query))
    no_cache_s = timed(lambda: mediator.source_query("NCMIR", query))

    cached = build_scenario(eager=False, cache=AnswerCache()).mediator
    warm_hit_s = timed(lambda: cached.source_query("NCMIR", query))

    lines = [
        "variant        per-call(s)   vs raw",
        "raw            %11.3e     1.00x" % raw_s,
        "cache=None     %11.3e  %7.2fx" % (no_cache_s, no_cache_s / raw_s),
        "warm hit       %11.3e  %7.2fx" % (warm_hit_s, warm_hit_s / raw_s),
    ]
    report("PERF-CACHE: source-query overhead with the cache off", lines)

    # generous bound, timer noise not a budget: the disabled-cache
    # path adds a single attribute check to the hot path
    assert no_cache_s / raw_s < 2.0


def _tiny_wrapper(name):
    from repro.sources import Column, RelStore, Wrapper

    store = RelStore(name)
    store.create_table(
        "t", [Column("id", "int"), Column("v", "int")], key="id"
    ).insert_many([{"id": 1, "v": 1}])
    wrapper = Wrapper(name, store)
    wrapper.export_class("%s_data" % name.lower(), "t", "id", methods={"v": "v"})
    return wrapper


def test_selective_invalidation_by_entry_count():
    mediator = build_scenario(
        eager=False, dialogue_via_xml=True, cache=AnswerCache()
    ).mediator
    mediator.correlate(section5_query())  # Purkinje-anchored entries
    mediator.source_query(  # one Pyramidal-anchored entry
        "SYNAPSE", SourceQuery("reconstruction", {"condition": "control"})
    )
    cache = mediator.cache
    counts = [cache.entry_count]

    # the ANATOM refinement grows the *basket/stellate/golgi* branch:
    # nothing cached depends on it, so nothing may be dropped
    mediator.register(
        build_anatom_source(), dm_refinement=DM_REFINEMENT.strip(), eager=False
    )
    counts.append(cache.entry_count)
    untouched = cache.stats.invalidated_entries

    # a refinement *below Granule_Cell* hits the NCMIR anchors; the
    # SENSELAB and SYNAPSE entries are anchored elsewhere and survive
    mediator.register(
        _tiny_wrapper("GRANULE2"),
        dm_refinement="Granule_Subtype < Granule_Cell",
        eager=False,
    )
    counts.append(cache.entry_count)
    survivors = sorted({entry.source for entry in cache.entries()})

    lines = [
        "entries after correlate+synapse query: %d" % counts[0],
        "after ANATOM refinement (basket branch): %d  (invalidated %d)"
        % (counts[1], untouched),
        "after Granule_Cell refinement: %d  (survivors: %s)"
        % (counts[2], ",".join(survivors)),
    ]
    report("PERF-CACHE: domain-map-aware selective invalidation", lines)

    assert counts[0] == 4
    assert untouched == 0 and counts[1] == counts[0]  # no global flush
    assert counts[2] == 2 and survivors == ["SENSELAB", "SYNAPSE"]
    assert cache.stats.invalidated_entries == counts[1] - counts[2]


def _cache_stats_json():
    from repro.__main__ import main

    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = main(["cache", "stats", "--json"])
    assert code == 0
    return stdout.getvalue().encode("utf-8")


def test_cache_stats_json_is_byte_deterministic():
    first = _cache_stats_json()
    second = _cache_stats_json()
    report(
        "PERF-CACHE: repro cache stats --json determinism",
        ["bytes=%d  identical=%s" % (len(first), first == second)],
    )
    assert first == second


def test_dedup_saves_calls_without_a_cache():
    with obs.capture("bench-dedup") as tracer:
        mediator = build_scenario(eager=False).mediator
        assert mediator.cache is None
        result = mediator.correlate(section5_query())
    deduped = tracer.metrics.counter_total("cache.dedup")
    queries = tracer.metrics.counter_total("source.queries")
    report(
        "PERF-CACHE: within-plan dedup (cache disabled)",
        ["source queries=%d  deduped=%d" % (queries, deduped)],
    )
    assert len(result.context.answers) == 4
    assert deduped >= 1  # the plan re-probes the seed source
