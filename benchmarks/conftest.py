"""Shared helpers for the benchmark harness.

Each benchmark regenerates one artifact of the paper (figure, worked
example, or query plan) and asserts its shape, then times the kernel
with pytest-benchmark.  Run with ``-s`` to see the regenerated tables::

    pytest benchmarks/ --benchmark-only -s

Alongside the text report, every benchmark session writes
``BENCH_summary.json`` at the repo root: kernel name -> timing stats,
plus the key medtrace metric counters of one traced Section 5 run
(rule firings, facts derived, per-source rows, wire bytes), so the
bench trajectory is machine-readable run over run.
"""

from __future__ import annotations

import json
import pathlib

SUMMARY_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_summary.json"


def report(title, lines):
    """Print one regenerated artifact block (visible with -s)."""
    print()
    print("#" * 72)
    print("# %s" % title)
    print("#" * 72)
    for line in lines:
        print(line)


def _timing_rows(session_config):
    """pytest-benchmark stats, if the plugin ran any kernels."""
    bench_session = getattr(session_config, "_benchmarksession", None)
    rows = {}
    if bench_session is None:
        return rows
    for bench in getattr(bench_session, "benchmarks", ()):
        stats = getattr(bench, "stats", None)
        if stats is None:
            continue
        try:
            rows[bench.fullname] = {
                "min_s": stats.min,
                "mean_s": stats.mean,
                "max_s": stats.max,
                "stddev_s": stats.stddev,
                "rounds": stats.rounds,
            }
        except (AttributeError, TypeError):  # disabled/partial runs
            continue
    return rows


def _obs_counters():
    """Key metric counters from one traced Section 5 correlation run."""
    from repro import obs
    from repro.neuro import build_scenario, section5_query

    with obs.capture("bench-summary") as tracer:
        mediator = build_scenario(eager=False).mediator
        _plan, context = mediator.correlate(section5_query())
    metrics = tracer.metrics
    return {
        "answers": len(context.answers),
        "datalog.evaluations": metrics.counter_total("datalog.evaluations"),
        "datalog.rule_firings": metrics.counter_total("datalog.rule_firings"),
        "datalog.facts_derived": metrics.counter_total("datalog.facts_derived"),
        "dm.graphops": metrics.counter_total("dm.graphops"),
        "planner.steps": metrics.counter_total("planner.steps"),
        "source.queries": metrics.counter_total("source.queries"),
        "source.rows_retrieved": metrics.counter_total("source.rows_retrieved"),
        "wire.bytes": metrics.counter_total("wire.bytes"),
        "spans": sum(1 for _ in tracer.iter_spans()),
    }


def resilience_overhead(calls=200):
    """Per-call cost of the medguard layer on the source-query path.

    Three variants of the same repeated source query:

    * ``raw`` — the normalized call below the guard check (the
      pre-medguard hot path);
    * ``no_policy`` — through :meth:`Mediator.source_query` with no
      policy configured (adds one ``is None`` check: must be noise);
    * ``with_policy`` — through a default :class:`ResiliencePolicy`
      (breaker lookup + outcome record per call).
    """
    import time

    from repro.neuro import build_scenario
    from repro.resilience import ResiliencePolicy, SourceGuard
    from repro.sources import SourceQuery

    query = SourceQuery(
        "protein_amount", {"location": "Purkinje Cell dendrite"}
    )

    def timed(fn):
        fn()  # warm caches outside the timed window
        start = time.perf_counter()
        for _ in range(calls):
            fn()
        return (time.perf_counter() - start) / calls

    mediator = build_scenario(eager=False).mediator
    wrapper = mediator.wrapper("NCMIR")
    raw_s = timed(lambda: mediator._source_query(wrapper, query))
    no_policy_s = timed(lambda: mediator.source_query("NCMIR", query))

    guarded = build_scenario(eager=False).mediator
    guarded.resilience = SourceGuard(ResiliencePolicy())
    with_policy_s = timed(lambda: guarded.source_query("NCMIR", query))

    return {
        "calls": calls,
        "raw_call_s": raw_s,
        "no_policy_call_s": no_policy_s,
        "with_policy_call_s": with_policy_s,
        "no_policy_overhead_ratio": no_policy_s / raw_s if raw_s else None,
        "with_policy_overhead_ratio": (
            with_policy_s / raw_s if raw_s else None
        ),
    }


def cache_effect(seed=2001):
    """Cold vs warm Section 5 correlation under one answer cache.

    Runs the correlation twice over the XML dialogue against the same
    mediator with medcache on: the cold run pays the wire, the warm
    run must answer entirely from cache (zero source queries, zero
    query wire bytes) and be measurably faster.
    """
    import time

    from repro import obs
    from repro.cache import AnswerCache
    from repro.neuro import build_scenario, section5_query

    mediator = build_scenario(
        seed=seed, eager=False, dialogue_via_xml=True, cache=AnswerCache()
    ).mediator
    runs = []
    for _ in range(2):
        with obs.capture("bench-cache") as tracer:
            start = time.perf_counter()
            result = mediator.correlate(section5_query())
            seconds = time.perf_counter() - start
        runs.append(
            {
                "seconds": seconds,
                "answers": len(result.context.answers),
                "source_queries": tracer.metrics.counter_total(
                    "source.queries"
                ),
                "query_wire_bytes": tracer.metrics.counter_value(
                    "wire.bytes", kind="query"
                ),
            }
        )
    cold, warm = runs

    # the correlation is dominated by datalog evaluation, so the
    # cache's effect is measured where it acts: one source call over
    # the XML wire vs one warm hit
    from repro.sources import SourceQuery

    query = SourceQuery(
        "protein_amount", {"location": "Purkinje Cell dendrite"}
    )

    def per_call(med, calls=200):
        med.source_query("NCMIR", query)  # warm outside the window
        start = time.perf_counter()
        for _ in range(calls):
            med.source_query("NCMIR", query)
        return (time.perf_counter() - start) / calls

    wire_call_s = per_call(
        build_scenario(seed=seed, eager=False, dialogue_via_xml=True).mediator
    )
    hit_call_s = per_call(mediator)

    return {
        "cold_s": cold["seconds"],
        "warm_s": warm["seconds"],
        "wire_call_s": wire_call_s,
        "hit_call_s": hit_call_s,
        "speedup_ratio": wire_call_s / hit_call_s if hit_call_s else None,
        "cold_source_queries": cold["source_queries"],
        "warm_source_queries": warm["source_queries"],
        "cold_query_wire_bytes": cold["query_wire_bytes"],
        "warm_query_wire_bytes": warm["query_wire_bytes"],
        "answers": cold["answers"],
        "entries": mediator.cache.entry_count,
        "hits": mediator.cache.stats.hits,
        "misses": mediator.cache.stats.misses,
    }


def parallel_effect(sources=4, delay=0.04, seed=2001):
    """Sequential vs medpar fan-out over N slow sources.

    The synthetic deployment pays `delay` wall-clock seconds per slow
    source query, so the retrieval step costs roughly ``sum`` of the
    per-source chains sequentially and ``max`` under fan-out.  Both
    runs must produce identical answers.
    """
    import time

    from repro.parallel import build_fanout_deployment

    runs = {}
    answers = {}
    for label, parallel in (("sequential", False), ("parallel", sources)):
        mediator, query = build_fanout_deployment(
            sources=sources, delay=delay, seed=seed, parallel=parallel
        )
        start = time.perf_counter()
        result = mediator.correlate(query)
        seconds = time.perf_counter() - start
        runs[label] = seconds
        answers[label] = [
            (group, distribution.total())
            for group, distribution in result.context.answers
        ]
        if mediator.parallel is not None:
            mediator.parallel.shutdown()

    return {
        "sources": sources,
        "delay_s": delay,
        "workers": sources,
        "sequential_s": runs["sequential"],
        "parallel_s": runs["parallel"],
        "speedup_ratio": (
            runs["sequential"] / runs["parallel"] if runs["parallel"] else None
        ),
        "answers": answers["sequential"],
        "answers_identical": answers["sequential"] == answers["parallel"],
    }


def pytest_sessionfinish(session, exitstatus):
    """Write the machine-readable benchmark summary at the repo root."""
    try:
        summary = {
            "timings": _timing_rows(session.config),
            "metrics": _obs_counters(),
            "resilience": resilience_overhead(),
            "cache": cache_effect(),
            "parallel": parallel_effect(),
        }
    except Exception as exc:  # never fail the session over the summary
        summary = {"error": "%s: %s" % (type(exc).__name__, exc)}
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
