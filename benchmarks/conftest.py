"""Shared helpers for the benchmark harness.

Each benchmark regenerates one artifact of the paper (figure, worked
example, or query plan) and asserts its shape, then times the kernel
with pytest-benchmark.  Run with ``-s`` to see the regenerated tables::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def report(title, lines):
    """Print one regenerated artifact block (visible with -s)."""
    print()
    print("#" * 72)
    print("# %s" % title)
    print("#" * 72)
    for line in lines:
        print(line)
